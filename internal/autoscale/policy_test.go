package autoscale

import "testing"

// calmSig is an idle fleet of size n.
func calmSig(n int) Signals { return Signals{FleetSize: n} }

// hotSig is a deep queue over a fleet of size n.
func hotSig(n int) Signals { return Signals{QueueDepth: 10, FleetSize: n} }

func TestPolicyScalesUpUnderQueuePressure(t *testing.T) {
	p := Policy{Min: 1, Max: 4, UpQueue: 4, CoolDownTicks: 2}
	if got := p.Decide(Signals{QueueDepth: 3, FleetSize: 1}); got != 0 {
		t.Fatalf("below-threshold queue scaled %+d", got)
	}
	if got := p.Decide(hotSig(1)); got != 1 {
		t.Fatalf("deep queue decided %+d, want +1", got)
	}
}

func TestPolicyScalesUpOnWaitPressureAlone(t *testing.T) {
	p := Policy{Min: 1, Max: 4, UpQueue: 100, UpWaitMs: 500, CoolDownTicks: 1}
	sig := Signals{QueueDepth: 1, OldestWaitMs: 900, FleetSize: 1}
	if got := p.Decide(sig); got != 1 {
		t.Fatalf("starved campaign decided %+d, want +1", got)
	}
}

func TestPolicyRespectsMaxAndCoolDown(t *testing.T) {
	p := Policy{Min: 1, Max: 3, UpQueue: 4, CoolDownTicks: 3}
	if got := p.Decide(hotSig(1)); got != 1 {
		t.Fatalf("first pressure tick decided %+d, want +1", got)
	}
	// Cool-down: sustained pressure must not fire again immediately.
	for i := 0; i < 3; i++ {
		if got := p.Decide(hotSig(2)); got != 0 {
			t.Fatalf("tick %d inside cool-down decided %+d", i, got)
		}
	}
	if got := p.Decide(hotSig(2)); got != 1 {
		t.Fatalf("post-cool-down pressure decided %+d, want +1", got)
	}
	// At Max the policy holds whatever the pressure.
	for i := 0; i < 10; i++ {
		if got := p.Decide(hotSig(3)); got != 0 {
			t.Fatalf("at-max tick %d decided %+d", i, got)
		}
	}
}

func TestPolicyScaleDownNeedsSustainedCalm(t *testing.T) {
	p := Policy{Min: 1, Max: 4, UpQueue: 4, DownIdleTicks: 4, CoolDownTicks: 1}
	for i := 0; i < 3; i++ {
		if got := p.Decide(calmSig(3)); got != 0 {
			t.Fatalf("calm tick %d decided %+d before the idle run completed", i, got)
		}
	}
	// One busy instant resets the calm run.
	if got := p.Decide(Signals{QueueDepth: 1, FleetSize: 3}); got != 0 {
		t.Fatalf("busy tick decided %+d", got)
	}
	for i := 0; i < 3; i++ {
		if got := p.Decide(calmSig(3)); got != 0 {
			t.Fatalf("restarted calm tick %d decided %+d", i, got)
		}
	}
	if got := p.Decide(calmSig(3)); got != -1 {
		t.Fatalf("sustained calm decided %+d, want -1", got)
	}
}

func TestPolicyNeverShrinksBelowMin(t *testing.T) {
	p := Policy{Min: 2, Max: 4, DownIdleTicks: 1, CoolDownTicks: 1}
	for i := 0; i < 20; i++ {
		if got := p.Decide(calmSig(2)); got == -1 {
			t.Fatalf("tick %d shrank a fleet already at Min", i)
		}
	}
}

func TestPolicyOutstandingWorkBlocksScaleDown(t *testing.T) {
	p := Policy{Min: 1, Max: 4, DownIdleTicks: 2, CoolDownTicks: 1, DownOutstanding: -1}
	busy := Signals{FleetSize: 3, Outstanding: 1}
	for i := 0; i < 10; i++ {
		if got := p.Decide(busy); got == -1 {
			t.Fatalf("tick %d drained a fleet with open requests", i)
		}
	}
	p.Decide(calmSig(3))
	if got := p.Decide(calmSig(3)); got != -1 {
		t.Fatalf("fully idle fleet decided %+d, want -1", got)
	}
}
