package autoscale

import (
	"sync"
	"testing"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/grid"
)

// TestElasticBurstScalesUpAndDown is the subsystem's end-to-end contract: a
// burst of campaigns against a one-SeD fleet grows it toward Max, every
// campaign's chunks stay bit-identical to their serial replay (spawned
// clones included), no chunk is ever requeued by a scale-down, and once the
// burst drains the fleet shrinks back to Min with the clones deregistered.
func TestElasticBurstScalesUpAndDown(t *testing.T) {
	cfg := grid.Config{
		Addr:            "127.0.0.1:0",
		QueueCap:        256,
		Dispatchers:     2,
		PerSeDInFlight:  2,
		EvictAfter:      2 * time.Second,
		RetryEvery:      10 * time.Millisecond,
		CampaignTimeout: 90 * time.Second,
	}
	f, err := grid.StartFabric(cfg, 1, 30, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.WaitAlive(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	ctl, err := Start(f.Sched, f.SeDs, Config{
		Min:            1,
		Max:            3,
		HeartbeatEvery: 50 * time.Millisecond,
		Sample:         10 * time.Millisecond,
		Speeds:         []float64{1.0, 0.5},
		Policy: Policy{
			UpQueue:       2,
			UpWaitMs:      200,
			DownIdleTicks: 4,
			CoolDownTicks: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctl.Close)

	// The burst: enough concurrent campaigns that two dispatchers keep a
	// visible queue for many 10ms samples.
	const campaigns = 24
	app := core.Application{Scenarios: 30, Months: 60}
	client := &grid.Client{Addr: f.Sched.Addr()}
	results := make([]*diet.CampaignResult, campaigns)
	errs := make([]error, campaigns)
	var wg sync.WaitGroup
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.Run(app, core.NameKnapsack)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
	}

	if ups := ctl.Counters().ScaleUps; ups < 1 {
		t.Fatalf("burst never scaled the fleet up (scale-ups %d)", ups)
	}

	// Scale-down: the idle fleet must fall back to Min, the drained clones
	// deregistered, with zero chunk requeues along the way.
	deadline := time.Now().Add(20 * time.Second)
	for {
		cs := ctl.Counters()
		if cs.FleetSize == 1 && cs.Draining == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never shrank back: %+v", cs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cs := ctl.Counters()
	if cs.ScaleDowns < 1 {
		t.Fatalf("fleet shrank without a counted scale-down: %+v", cs)
	}
	st := f.Sched.Stats()
	if st.Requeues != 0 {
		t.Fatalf("scale-down requeued %d chunks, want 0", st.Requeues)
	}
	for _, sd := range st.SeDs {
		if sd.Cluster != f.SeDs[0].Cluster().Name {
			t.Fatalf("drained clone %q still registered", sd.Cluster)
		}
	}

	// Bit-identity across the whole elastic run: every chunk — including
	// those served by spawned, half-speed clones — replays exactly on the
	// base profiles.
	v, err := grid.NewVerifier(f.Clusters, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if err := v.Verify(app, res); err != nil {
			t.Fatalf("campaign %d: %v", i, err)
		}
	}
}
