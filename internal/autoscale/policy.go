// Package autoscale grows and shrinks an in-process SeD fleet against the
// scheduler's queue pressure. The controller samples the daemon's stats,
// feeds them through a hysteresis policy, and spawns clone SeDs under load
// or gracefully drains them when the queue stays calm — drain meaning the
// daemon stops receiving new chunks, finishes what it holds, and only then
// deregisters, so a scale-down never requeues a chunk.
package autoscale

// Signals is one sampled observation of scheduler pressure — the inputs a
// scaling decision is made from.
type Signals struct {
	// QueueDepth is the number of campaigns waiting for a dispatcher.
	QueueDepth int
	// OldestWaitMs is the longest admission-to-now wait among queued
	// campaigns: the deadline-pressure signal. Queue depth alone misses a
	// single starved campaign behind a slow fleet.
	OldestWaitMs float64
	// FleetSize is the controller's current dispatchable fleet (base plus
	// spawned, draining excluded).
	FleetSize int
	// Outstanding sums the scheduler's open requests across the fleet —
	// the work-in-progress signal that keeps a busy-but-unqueued system
	// from scaling down.
	Outstanding int
}

// Policy is the hysteresis scaling policy: scale up under sustained queue
// or wait pressure, scale down only after the system has stayed calm for a
// run of consecutive samples, and never act twice within the cool-down
// window. The zero value of each threshold picks the default. Decide
// mutates internal counters and is not safe for concurrent use — the
// controller calls it from its single sampler goroutine.
type Policy struct {
	// Min and Max bound the fleet size. Decide never proposes a fleet
	// below Min or above Max.
	Min, Max int
	// UpQueue is the queue depth at which the policy wants another SeD
	// (default 4).
	UpQueue int
	// UpWaitMs is the oldest-wait threshold in milliseconds that counts as
	// pressure even with a shallow queue (default 500).
	UpWaitMs float64
	// DownIdleTicks is how many consecutive calm samples must pass before
	// a scale-down (default 8). Hysteresis: one idle instant between
	// bursts must not shed capacity.
	DownIdleTicks int
	// CoolDownTicks is how many samples after any action the policy stays
	// quiet (default 4), so one burst scales in steps instead of jumping
	// straight to Max and oscillating.
	CoolDownTicks int
	// DownOutstanding is the most open requests the fleet may hold while
	// still counting as calm (default 2): a trickle of work should not pin
	// an over-provisioned fleet forever. Set -1 to demand a fully idle
	// fleet before any scale-down.
	DownOutstanding int

	normalized bool
	cooldown   int
	calm       int
}

// defaults fills unset thresholds in place, once: the -1 spellings must
// not be re-normalized on the next tick.
func (p *Policy) defaults() {
	if p.normalized {
		return
	}
	p.normalized = true
	if p.Min < 1 {
		p.Min = 1
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	if p.UpQueue <= 0 {
		p.UpQueue = 4
	}
	if p.UpWaitMs <= 0 {
		p.UpWaitMs = 500
	}
	if p.DownIdleTicks <= 0 {
		p.DownIdleTicks = 8
	}
	if p.CoolDownTicks <= 0 {
		p.CoolDownTicks = 4
	}
	if p.DownOutstanding < 0 {
		p.DownOutstanding = 0
	} else if p.DownOutstanding == 0 {
		p.DownOutstanding = 2
	}
}

// Decide folds one observation into the policy state and returns the
// action: +1 to spawn a SeD, -1 to drain one, 0 to hold.
func (p *Policy) Decide(sig Signals) int {
	p.defaults()
	coolingDown := p.cooldown > 0
	if coolingDown {
		p.cooldown--
	}
	pressure := sig.QueueDepth >= p.UpQueue || sig.OldestWaitMs >= p.UpWaitMs
	calm := sig.QueueDepth == 0 && sig.Outstanding <= p.DownOutstanding
	if pressure {
		p.calm = 0
		if sig.FleetSize < p.Max && !coolingDown {
			p.cooldown = p.CoolDownTicks
			return 1
		}
		return 0
	}
	if !calm {
		p.calm = 0
		return 0
	}
	p.calm++
	if sig.FleetSize > p.Min && p.calm >= p.DownIdleTicks && !coolingDown {
		p.cooldown = p.CoolDownTicks
		p.calm = 0
		return -1
	}
	return 0
}
