package autoscale

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"oagrid/internal/diet"
	"oagrid/internal/exec"
	"oagrid/internal/grid"
	"oagrid/internal/platform"
)

// Config tunes a Controller. Min/Max bound the total fleet (base SeDs
// included); the base fleet is never drained, so Min below the base size
// reads as the base size.
type Config struct {
	// Min and Max bound the fleet. Max <= Min disables scaling up.
	Min, Max int
	// HeartbeatEvery is the spawned SeDs' heartbeat interval (default 1s).
	HeartbeatEvery time.Duration
	// Sample is the controller's observation interval (default 250ms).
	Sample time.Duration
	// Speeds are relative speed factors cycled across spawned SeDs (1.0 =
	// reference, 0.5 = twice as slow). Nil spawns reference-speed daemons.
	Speeds []float64
	// Policy holds the hysteresis thresholds; its Min/Max are overwritten
	// from the fields above.
	Policy Policy
}

// member is one controller-owned SeD.
type member struct {
	sed     *diet.SeD
	cluster string
	addr    string
}

// Counters is a snapshot of the controller's public counters, the source
// for the /metrics families and the load injector's report.
type Counters struct {
	// FleetSize is the current dispatchable fleet (base + spawned,
	// draining excluded).
	FleetSize int
	// Draining is how many SeDs are currently finishing their last chunks.
	Draining int
	// ScaleUps and ScaleDowns count completed actions: a scale-down counts
	// when the drained SeD deregisters, not when the drain starts.
	ScaleUps, ScaleDowns uint64
	// ScaleUpLatencyMaxMs is the slowest observed spawn-to-registered
	// latency in milliseconds.
	ScaleUpLatencyMaxMs float64
}

// Controller owns the elastic part of a scheduler's SeD fleet. It samples
// the scheduler, asks the Policy for a verdict, and spawns or drains clone
// SeDs. Spawned daemons serve clones of the base fleet's cluster profiles
// named "<base>#<seq>" — same timing, same processors — so the serial
// verifier replays their chunks through the base profile and bit-identity
// holds across every fleet size.
type Controller struct {
	sched  *grid.Scheduler
	cfg    Config
	policy Policy

	// prototypes are the base fleet's profiles, cycled for spawns.
	prototypes []*platform.Cluster

	done   chan struct{}
	closed sync.Once
	wg     sync.WaitGroup

	mu       sync.Mutex
	baseSize int
	spawned  []*member
	draining []*member
	seq      int

	scaleUps     atomic.Uint64
	scaleDowns   atomic.Uint64
	fleetSize    atomic.Int64
	drainingN    atomic.Int64
	latencyMaxMs atomic.Uint64 // math.Float64bits
}

// Start attaches a controller to sched over the given base fleet and runs
// its sampler loop. The base SeDs stay under the caller's ownership and are
// never drained; the controller only ever closes daemons it spawned. The
// controller also installs the scheduler's metrics hook, adding the
// oagrid_autoscale_* families to /metrics.
func Start(sched *grid.Scheduler, base []*diet.SeD, cfg Config) (*Controller, error) {
	if len(base) == 0 {
		return nil, fmt.Errorf("autoscale: need at least one base SeD to clone profiles from")
	}
	if cfg.Min < len(base) {
		cfg.Min = len(base)
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = time.Second
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 250 * time.Millisecond
	}
	c := &Controller{
		sched:    sched,
		cfg:      cfg,
		policy:   cfg.Policy,
		done:     make(chan struct{}),
		baseSize: len(base),
	}
	c.policy.Min = cfg.Min
	c.policy.Max = cfg.Max
	for _, sed := range base {
		c.prototypes = append(c.prototypes, sed.Cluster())
	}
	c.fleetSize.Store(int64(len(base)))
	sched.SetMetricsHook(c.writeMetrics)
	c.wg.Add(1)
	go c.run()
	return c, nil
}

// Close stops the sampler, removes the metrics hook, and closes every
// spawned SeD without draining — shutdown is the whole fabric going away,
// not a scale-down.
func (c *Controller) Close() {
	c.closed.Do(func() { close(c.done) })
	c.wg.Wait()
	c.sched.SetMetricsHook(nil)
	c.mu.Lock()
	members := append(append([]*member(nil), c.spawned...), c.draining...)
	c.spawned, c.draining = nil, nil
	c.mu.Unlock()
	for _, m := range members {
		m.sed.Close()
	}
}

// Counters snapshots the controller's public counters.
func (c *Controller) Counters() Counters {
	return Counters{
		FleetSize:           int(c.fleetSize.Load()),
		Draining:            int(c.drainingN.Load()),
		ScaleUps:            c.scaleUps.Load(),
		ScaleDowns:          c.scaleDowns.Load(),
		ScaleUpLatencyMaxMs: math.Float64frombits(c.latencyMaxMs.Load()),
	}
}

// run is the sampler loop: observe, reap finished drains, decide, act.
func (c *Controller) run() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.Sample)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		st := c.sched.Stats()
		c.reapDrained(&st)
		sig := Signals{
			QueueDepth:   st.QueueDepth,
			OldestWaitMs: st.OldestWaitMs,
			FleetSize:    int(c.fleetSize.Load()),
		}
		for _, sd := range st.SeDs {
			sig.Outstanding += sd.Outstanding
		}
		switch c.policy.Decide(sig) {
		case 1:
			c.spawnOne()
		case -1:
			c.drainOne()
		}
	}
}

// spawnOne starts one clone SeD, heartbeats it into the scheduler, and
// waits (bounded) for the registration to land so the scale-up latency is
// the fleet's real reaction time, not just process start.
func (c *Controller) spawnOne() {
	c.mu.Lock()
	idx := c.seq
	c.seq++
	proto := c.prototypes[idx%len(c.prototypes)]
	speed := 1.0
	if len(c.cfg.Speeds) > 0 {
		speed = c.cfg.Speeds[idx%len(c.cfg.Speeds)]
	}
	c.mu.Unlock()

	clone := *proto
	clone.Name = fmt.Sprintf("%s#%d", proto.Name, idx+1)
	start := time.Now()
	sed, err := diet.StartSeDSpeed("127.0.0.1:0", &clone, exec.Options{}, speed)
	if err != nil {
		return
	}
	sed.StartHeartbeats(c.sched.Addr(), c.cfg.HeartbeatEvery)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !c.registered(clone.Name) {
		time.Sleep(5 * time.Millisecond)
	}
	c.observeLatency(time.Since(start))

	c.mu.Lock()
	c.spawned = append(c.spawned, &member{sed: sed, cluster: clone.Name, addr: sed.Addr()})
	c.fleetSize.Store(int64(c.baseSize + len(c.spawned)))
	c.mu.Unlock()
	c.scaleUps.Add(1)
}

// drainOne flips the youngest spawned SeD into drain mode. LIFO choice:
// the longest-lived daemons keep the most warmed perf-vector cache. The
// base fleet is never drained.
func (c *Controller) drainOne() {
	c.mu.Lock()
	n := len(c.spawned)
	if n == 0 {
		c.mu.Unlock()
		return
	}
	m := c.spawned[n-1]
	c.spawned = c.spawned[:n-1]
	c.draining = append(c.draining, m)
	c.fleetSize.Store(int64(c.baseSize + len(c.spawned)))
	c.drainingN.Store(int64(len(c.draining)))
	c.mu.Unlock()
	m.sed.Drain()
}

// reapDrained deregisters and closes every draining SeD that has finished:
// the scheduler shows it drained with no leases and no open requests, and
// the daemon itself holds no in-flight work. DeregisterSeD re-checks the
// same conditions under the scheduler's lock, so a round that sneaks in
// between the stats snapshot and the call just defers the reap one tick.
func (c *Controller) reapDrained(st *diet.StatsResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var still []*member
	for _, m := range c.draining {
		if c.drainDone(m, st) && c.sched.DeregisterSeD(m.cluster, m.addr) {
			m.sed.Close()
			c.scaleDowns.Add(1)
			continue
		}
		still = append(still, m)
	}
	c.draining = still
	c.drainingN.Store(int64(len(c.draining)))
}

// drainDone reports whether the scheduler and the daemon both see m idle.
func (c *Controller) drainDone(m *member, st *diet.StatsResponse) bool {
	if m.sed.InFlight() != 0 {
		return false
	}
	for _, sd := range st.SeDs {
		if sd.Cluster == m.cluster {
			return sd.Draining && sd.Leases == 0 && sd.Outstanding == 0
		}
	}
	// Not in the stats at all: already evicted or deregistered; let
	// DeregisterSeD make the authoritative call.
	return true
}

// registered reports whether the scheduler currently lists cluster alive.
func (c *Controller) registered(cluster string) bool {
	for _, sd := range c.sched.Stats().SeDs {
		if sd.Cluster == cluster && sd.Alive {
			return true
		}
	}
	return false
}

// observeLatency folds one spawn-to-registered duration into the max gauge.
func (c *Controller) observeLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for {
		old := c.latencyMaxMs.Load()
		if ms <= math.Float64frombits(old) {
			return
		}
		if c.latencyMaxMs.CompareAndSwap(old, math.Float64bits(ms)) {
			return
		}
	}
}

// writeMetrics renders the controller's exposition-format families; it is
// installed as the scheduler's metrics hook and runs on every scrape.
func (c *Controller) writeMetrics(w io.Writer) {
	cs := c.Counters()
	fmt.Fprintf(w, "# HELP oagrid_autoscale_fleet_size Dispatchable SeDs under the autoscaler (base plus spawned, draining excluded).\n# TYPE oagrid_autoscale_fleet_size gauge\n")
	fmt.Fprintf(w, "oagrid_autoscale_fleet_size %v\n", float64(cs.FleetSize))
	fmt.Fprintf(w, "# HELP oagrid_autoscale_draining Spawned SeDs currently finishing their last chunks.\n# TYPE oagrid_autoscale_draining gauge\n")
	fmt.Fprintf(w, "oagrid_autoscale_draining %v\n", float64(cs.Draining))
	fmt.Fprintf(w, "# HELP oagrid_autoscale_scale_ups_total Completed scale-up actions.\n# TYPE oagrid_autoscale_scale_ups_total counter\n")
	fmt.Fprintf(w, "oagrid_autoscale_scale_ups_total %v\n", float64(cs.ScaleUps))
	fmt.Fprintf(w, "# HELP oagrid_autoscale_scale_downs_total Completed scale-down actions (drained and deregistered).\n# TYPE oagrid_autoscale_scale_downs_total counter\n")
	fmt.Fprintf(w, "oagrid_autoscale_scale_downs_total %v\n", float64(cs.ScaleDowns))
	fmt.Fprintf(w, "# HELP oagrid_autoscale_scale_up_latency_ms_max Slowest spawn-to-registered latency observed.\n# TYPE oagrid_autoscale_scale_up_latency_ms_max gauge\n")
	fmt.Fprintf(w, "oagrid_autoscale_scale_up_latency_ms_max %v\n", cs.ScaleUpLatencyMaxMs)
}
