package diet

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"oagrid/internal/core"
)

// hotRequests covers every hand-rolled request layout.
func hotRequests() []*Request {
	return []*Request{
		{Version: ProtocolV4, Kind: KindSubmit, Submit: &SubmitRequest{
			Scenarios: 10, Months: 12, Heuristic: "knapsack",
			Wait: true, Progress: true, Priority: -3,
			Labels:   map[string]string{"team": "ocean", "tier": "a"},
			Deadline: 90 * time.Second,
		}},
		{Version: ProtocolV4, Kind: KindExec, Exec: &ExecRequest{
			ScenarioIDs: []int{0, 3, 7, 9}, Months: 12, Heuristic: "knapsack",
		}},
		{Version: ProtocolV4, Kind: KindPerf, Perf: &PerfRequest{Scenarios: 10, Months: 12, Heuristic: "knapsack"}},
		{Version: ProtocolV4, Kind: KindHeartbeat, Heartbeat: &HeartbeatRequest{
			Cluster: "grillon", Addr: "127.0.0.1:9999", Procs: 56, InFlight: 2,
		}},
		{Version: ProtocolV7, Kind: KindHeartbeat, Heartbeat: &HeartbeatRequest{
			Cluster: "grelon", Addr: "127.0.0.1:9998", Procs: 120, InFlight: 1, Speed: 0.5, Draining: true,
		}},
		{Version: ProtocolV4, Kind: KindAttach, Attach: &AttachRequest{ID: 42, Progress: true}},
		{Version: ProtocolV4, Kind: KindResult, Result: &ResultRequest{ID: 7}},
	}
}

// hotResponses covers every hand-rolled response layout.
func hotResponses() []*Response {
	exec := ExecResponse{
		Cluster: "grillon", Makespan: 1234.5625, Scenarios: 4, Round: 1, FirstScenario: 3,
		Allocation: core.Allocation{Groups: []int{8, 8, 8}, PostProcs: 4, Heuristic: "knapsack"},
	}
	return []*Response{
		{Version: ProtocolV4, Err: "boom"},
		{Version: ProtocolV4, Submit: &SubmitResponse{ID: 9, Accepted: true, Reason: "", QueueDepth: 3}},
		{Version: ProtocolV5, Submit: &SubmitResponse{Accepted: false, Reason: "tenant quota exhausted", QueueDepth: 7, Code: RejectQuota}},
		{Version: ProtocolV4, Exec: &exec},
		{Version: ProtocolV4, Perf: &PerfResponse{Cluster: "grelon", Procs: 120, Vector: []float64{1.5, 2.25, math.Pi}}},
		{Version: ProtocolV4, Heartbeat: &HeartbeatResponse{OK: true}},
		{Version: ProtocolV4, Attach: &AttachResponse{ID: 4, Found: true, Status: CampaignRunning, Done: 2, Total: 10}},
		{Version: ProtocolV4, Progress: &ProgressUpdate{
			ID: 4, Stage: StagePlanned, Done: 2, Total: 10, Requeued: 1,
			Planned: []PlannedChunk{{Cluster: "grillon", Scenarios: 6}, {Cluster: "grelon", Scenarios: 4}},
		}},
		{Version: ProtocolV4, Progress: &ProgressUpdate{ID: 4, Stage: StageChunk, Done: 6, Total: 10, Chunk: &exec}},
		{Version: ProtocolV4, Result: &CampaignResult{
			ID: 4, Status: CampaignDone, Makespan: 2469.125, Requeues: 1, Done: 10, Total: 10,
			Reports: []ExecResponse{exec, {Cluster: "grelon", Makespan: 99.5, Scenarios: 6,
				Allocation: core.Allocation{Groups: []int{10, 10}, PostProcs: 2, Heuristic: "knapsack"}}},
		}},
	}
}

// coldEnvelopes exercises the JSON fallback frames.
func coldEnvelopes() ([]*Request, []*Response) {
	reqs := []*Request{
		{Version: ProtocolV4, Kind: KindStats, Stats: &StatsRequest{}},
		{Version: ProtocolV4, Kind: KindCancel, Cancel: &CancelRequest{ID: 12}},
		{Version: ProtocolV4, Kind: KindListCampaigns, ListCampaigns: &ListCampaignsRequest{
			Status: CampaignDone, Labels: map[string]string{"team": "ocean"},
		}},
		{Version: ProtocolV4, Kind: KindRegister, Register: &RegisterRequest{Cluster: "grillon", Addr: "a", Procs: 8}},
	}
	resps := []*Response{
		{Version: ProtocolV4, Stats: &StatsResponse{QueueDepth: 1, Completed: 5}},
		{Version: ProtocolV4, Cancel: &CancelResponse{ID: 12, Found: true, Status: CampaignCancelled}},
		{Version: ProtocolV4, Info: &CampaignInfo{ID: 3, Found: true, Status: CampaignRunning}},
	}
	return reqs, resps
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	reqs := hotRequests()
	cold, _ := coldEnvelopes()
	reqs = append(reqs, cold...)
	for _, req := range reqs {
		buf, err := AppendRequestFrame(nil, req)
		if err != nil {
			t.Fatalf("%s: encode: %v", req.Kind, err)
		}
		hdr, payload, err := ParseFrame(buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", req.Kind, err)
		}
		if int(hdr.Length)+frameHeaderSize != len(buf) {
			t.Fatalf("%s: header length %d does not cover the %d-byte frame", req.Kind, hdr.Length, len(buf))
		}
		dec := &FrameDecoder{Retain: true}
		got, err := dec.DecodeRequestFrame(hdr, payload)
		if err != nil {
			t.Fatalf("%s: decode: %v", req.Kind, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", req.Kind, got, req)
		}
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	resps := hotResponses()
	_, cold := coldEnvelopes()
	resps = append(resps, cold...)
	for i, resp := range resps {
		buf, err := AppendResponseFrame(nil, resp)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		hdr, payload, err := ParseFrame(buf)
		if err != nil {
			t.Fatalf("case %d: parse: %v", i, err)
		}
		dec := &FrameDecoder{Retain: true}
		got, err := dec.DecodeResponseFrame(hdr, payload)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("case %d: round trip mismatch:\n got %+v\nwant %+v", i, got, resp)
		}
		// Makespans must survive bit-exactly — the whole grid's verification
		// story depends on it.
		if resp.Exec != nil && math.Float64bits(got.Exec.Makespan) != math.Float64bits(resp.Exec.Makespan) {
			t.Fatalf("case %d: makespan bits changed across the wire", i)
		}
	}
}

// TestBinaryScratchReuse decodes two different frames through one scratch
// decoder and checks the second decode does not corrupt what the first
// returned when Retain is set — and conversely that scratch mode really
// does reuse memory (the documented volatility).
func TestBinaryScratchReuse(t *testing.T) {
	first := &Response{Version: ProtocolV4, Exec: &ExecResponse{
		Cluster: "a", Makespan: 1, Scenarios: 1,
		Allocation: core.Allocation{Groups: []int{1, 2, 3}, Heuristic: "knapsack"},
	}}
	second := &Response{Version: ProtocolV4, Exec: &ExecResponse{
		Cluster: "b", Makespan: 2, Scenarios: 2,
		Allocation: core.Allocation{Groups: []int{9, 9, 9}, Heuristic: "knapsack"},
	}}
	encode := func(r *Response) (FrameHeader, []byte) {
		buf, err := AppendResponseFrame(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		hdr, payload, err := ParseFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		return hdr, payload
	}
	h1, p1 := encode(first)
	h2, p2 := encode(second)

	retained := &FrameDecoder{Retain: true}
	got1, err := retained.DecodeResponseFrame(h1, p1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := retained.DecodeResponseFrame(h2, p2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, first) {
		t.Fatalf("retained decode corrupted by the next frame: %+v", got1)
	}

	scratch := &FrameDecoder{}
	s1, err := scratch.DecodeResponseFrame(h1, p1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Exec.Cluster != "a" {
		t.Fatalf("scratch decode wrong: %+v", s1.Exec)
	}
	s2, err := scratch.DecodeResponseFrame(h2, p2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("scratch mode should hand back the same envelope")
	}
}

// TestZeroAllocHotKinds locks in the tentpole's allocation contract: a v4
// hot-kind encode + decode round trip costs zero allocations per operation
// once the buffers and the intern table are warm.
func TestZeroAllocHotKinds(t *testing.T) {
	execReq := &Request{Version: ProtocolV4, Kind: KindExec, Exec: &ExecRequest{
		ScenarioIDs: []int{0, 1, 2, 3, 4, 5}, Months: 12, Heuristic: "knapsack",
	}}
	hb := &Request{Version: ProtocolV4, Kind: KindHeartbeat, Heartbeat: &HeartbeatRequest{
		Cluster: "grillon", Addr: "127.0.0.1:9999", Procs: 56, InFlight: 2,
	}}
	execResp := &Response{Version: ProtocolV4, Exec: &ExecResponse{
		Cluster: "grillon", Makespan: 1234.5625, Scenarios: 4, Round: 1, FirstScenario: 3,
		Allocation: core.Allocation{Groups: []int{8, 8, 8}, PostProcs: 4, Heuristic: "knapsack"},
	}}
	progress := &Response{Version: ProtocolV4, Progress: &ProgressUpdate{
		ID: 4, Stage: StageChunk, Done: 6, Total: 10, Chunk: execResp.Exec,
	}}

	buf := make([]byte, 0, 4096)
	dec := &FrameDecoder{}
	roundTrip := func() {
		var err error
		for _, req := range []*Request{execReq, hb} {
			if buf, err = AppendRequestFrame(buf[:0], req); err != nil {
				t.Fatal(err)
			}
			hdr, payload, perr := ParseFrame(buf)
			if perr != nil {
				t.Fatal(perr)
			}
			if _, err = dec.DecodeRequestFrame(hdr, payload); err != nil {
				t.Fatal(err)
			}
		}
		for _, resp := range []*Response{execResp, progress} {
			if buf, err = AppendResponseFrame(buf[:0], resp); err != nil {
				t.Fatal(err)
			}
			hdr, payload, perr := ParseFrame(buf)
			if perr != nil {
				t.Fatal(perr)
			}
			if _, err = dec.DecodeResponseFrame(hdr, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	roundTrip() // warm the buffer, the scratch slices and the intern table
	if allocs := testing.AllocsPerRun(200, roundTrip); allocs != 0 {
		t.Fatalf("hot-kind round trip allocates %.1f times per op, want 0", allocs)
	}
}

// TestSubmitCodeVersionGate pins the v4/v5 compat contract for the submit
// verdict's Code field: a frame negotiated at v4 must be byte-identical
// whether or not the daemon has a code to report (old decoders reject
// trailing bytes), and a v5 frame must carry it.
func TestSubmitCodeVersionGate(t *testing.T) {
	withCode := &Response{Version: ProtocolV4, Submit: &SubmitResponse{
		Accepted: false, Reason: "queue full", QueueDepth: 64, Code: RejectQueueFull,
	}}
	withoutCode := &Response{Version: ProtocolV4, Submit: &SubmitResponse{
		Accepted: false, Reason: "queue full", QueueDepth: 64,
	}}
	f1, err := AppendResponseFrame(nil, withCode)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := AppendResponseFrame(nil, withoutCode)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1, f2) {
		t.Fatalf("v4 submit frame changed with Code set:\n got % x\nwant % x", f1, f2)
	}
	hdr, payload, err := ParseFrame(f1)
	if err != nil {
		t.Fatal(err)
	}
	dec := &FrameDecoder{Retain: true}
	got, err := dec.DecodeResponseFrame(hdr, payload)
	if err != nil {
		t.Fatalf("v4 decode of a new daemon's submit verdict: %v", err)
	}
	if got.Submit.Code != "" {
		t.Fatalf("v4 frame smuggled code %q", got.Submit.Code)
	}

	v5 := &Response{Version: ProtocolV5, Submit: &SubmitResponse{
		Accepted: false, Reason: "quota", QueueDepth: 2, Code: RejectQuota,
	}}
	f5, err := AppendResponseFrame(nil, v5)
	if err != nil {
		t.Fatal(err)
	}
	hdr, payload, err = ParseFrame(f5)
	if err != nil {
		t.Fatal(err)
	}
	got, err = dec.DecodeResponseFrame(hdr, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Submit.Code != RejectQuota {
		t.Fatalf("v5 frame carried code %q, want %q", got.Submit.Code, RejectQuota)
	}
}

// TestHeartbeatSpeedVersionGate pins the v4/v7 compat contract for the
// elastic-fleet heartbeat fields: a frame negotiated below v7 must be
// byte-identical whether or not the daemon carries a speed factor or drain
// flag (old decoders reject trailing bytes), and a v7 frame must carry
// both.
func TestHeartbeatSpeedVersionGate(t *testing.T) {
	withFields := &Request{Version: ProtocolV6, Kind: KindHeartbeat, Heartbeat: &HeartbeatRequest{
		Cluster: "grillon", Addr: "127.0.0.1:9999", Procs: 56, InFlight: 2, Speed: 0.5, Draining: true,
	}}
	withoutFields := &Request{Version: ProtocolV6, Kind: KindHeartbeat, Heartbeat: &HeartbeatRequest{
		Cluster: "grillon", Addr: "127.0.0.1:9999", Procs: 56, InFlight: 2,
	}}
	f1, err := AppendRequestFrame(nil, withFields)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := AppendRequestFrame(nil, withoutFields)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f1, f2) {
		t.Fatalf("pre-v7 heartbeat frame changed with Speed/Draining set:\n got % x\nwant % x", f1, f2)
	}
	hdr, payload, err := ParseFrame(f1)
	if err != nil {
		t.Fatal(err)
	}
	dec := &FrameDecoder{Retain: true}
	got, err := dec.DecodeRequestFrame(hdr, payload)
	if err != nil {
		t.Fatalf("pre-v7 decode of an elastic daemon's heartbeat: %v", err)
	}
	if got.Heartbeat.Speed != 0 || got.Heartbeat.Draining {
		t.Fatalf("pre-v7 frame smuggled speed %v draining %v", got.Heartbeat.Speed, got.Heartbeat.Draining)
	}

	v7 := &Request{Version: ProtocolV7, Kind: KindHeartbeat, Heartbeat: &HeartbeatRequest{
		Cluster: "grelon", Addr: "127.0.0.1:9998", Procs: 120, InFlight: 1, Speed: 0.25, Draining: true,
	}}
	f7, err := AppendRequestFrame(nil, v7)
	if err != nil {
		t.Fatal(err)
	}
	hdr, payload, err = ParseFrame(f7)
	if err != nil {
		t.Fatal(err)
	}
	got, err = dec.DecodeRequestFrame(hdr, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Heartbeat.Speed != 0.25 || !got.Heartbeat.Draining {
		t.Fatalf("v7 frame carried speed %v draining %v, want 0.25 true", got.Heartbeat.Speed, got.Heartbeat.Draining)
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	frame, err := AppendResponseFrame(nil, &Response{Version: ProtocolV4, Err: "x"})
	if err != nil {
		t.Fatal(err)
	}
	// Forge a hostile length prefix over a valid header.
	frame[8], frame[9], frame[10], frame[11] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, _, err := ParseFrame(frame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized length prefix: got %v, want ErrFrameTooLarge", err)
	}
	// Reading from a stream must reject it too, before buffering the payload.
	d := &FrameDecoder{}
	if _, err := d.ReadResponse(bytes.NewReader(frame)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("stream read: got %v, want ErrFrameTooLarge", err)
	}
}

func TestTruncatedAndTrailingPayloads(t *testing.T) {
	frame, err := AppendResponseFrame(nil, hotResponses()[2]) // exec response
	if err != nil {
		t.Fatal(err)
	}
	hdr, payload, err := ParseFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	dec := &FrameDecoder{}
	for cut := 0; cut < len(payload); cut++ {
		if _, err := dec.DecodeResponseFrame(hdr, payload[:cut]); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("truncation at %d: got %v, want ErrBadFrame", cut, err)
		}
	}
	if _, err := dec.DecodeResponseFrame(hdr, append(append([]byte{}, payload...), 0)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("trailing byte: got %v, want ErrBadFrame", err)
	}
	if _, _, err := ParseFrame([]byte("GET / HTTP/1.1\r\n")); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: got %v, want ErrBadFrame", err)
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	resp := hotResponses()[7] // progress frame carrying a chunk report
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = AppendResponseFrame(buf[:0], resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFrame(b *testing.B) {
	frame, err := AppendResponseFrame(nil, hotResponses()[7])
	if err != nil {
		b.Fatal(err)
	}
	hdr, payload, err := ParseFrame(frame)
	if err != nil {
		b.Fatal(err)
	}
	dec := &FrameDecoder{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.DecodeResponseFrame(hdr, payload); err != nil {
			b.Fatal(err)
		}
	}
}
