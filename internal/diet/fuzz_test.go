package diet

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the full binary decode path —
// header parse, then request AND response payload decode under both
// ownership modes — and demands it never panics, never accepts an
// oversized length prefix with anything but ErrFrameTooLarge, and only
// ever fails with the package's typed errors. Seed corpus: every valid
// hot-kind and cold-envelope frame, plus classic corruptions.
func FuzzDecodeFrame(f *testing.F) {
	for _, req := range hotRequests() {
		if frame, err := AppendRequestFrame(nil, req); err == nil {
			f.Add(frame)
		}
	}
	for _, resp := range hotResponses() {
		if frame, err := AppendResponseFrame(nil, resp); err == nil {
			f.Add(frame)
		}
	}
	cr, cresp := coldEnvelopes()
	for _, req := range cr {
		if frame, err := AppendRequestFrame(nil, req); err == nil {
			f.Add(frame)
		}
	}
	for _, resp := range cresp {
		if frame, err := AppendResponseFrame(nil, resp); err == nil {
			f.Add(frame)
		}
	}
	// Hostile shapes: bad magic, short header, oversized length prefix,
	// huge collection counts, truncations.
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add(frameMagic[:])
	f.Add([]byte{0xF7, 'O', 'A', '4', 4, fkExecResp, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0xF7, 'O', 'A', '4', 4, fkSubmitReq, 0, 0, 8, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	if frame, err := AppendResponseFrame(nil, hotResponses()[8]); err == nil { // campaign result
		f.Add(frame[:len(frame)-3])
		mid := append([]byte{}, frame...)
		mid[frameHeaderSize+9] ^= 0x80
		f.Add(mid)
	}

	typed := func(t *testing.T, err error) {
		if err == nil || errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameTooLarge) {
			return
		}
		t.Fatalf("untyped decode error: %v", err)
	}

	scratch := &FrameDecoder{}
	retained := &FrameDecoder{Retain: true}
	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, payload, err := ParseFrame(data)
		if err != nil {
			if hdr.Length > MaxFramePayload && !errors.Is(err, ErrFrameTooLarge) {
				t.Fatalf("oversized length prefix %d rejected with %v, want ErrFrameTooLarge", hdr.Length, err)
			}
			typed(t, err)
		} else {
			for _, d := range []*FrameDecoder{scratch, retained} {
				if _, rerr := d.DecodeRequestFrame(hdr, payload); rerr != nil {
					typed(t, rerr)
				}
				if _, rerr := d.DecodeResponseFrame(hdr, payload); rerr != nil {
					typed(t, rerr)
				}
			}
		}
		// The streaming reader must agree with the in-memory parser and
		// tolerate arbitrary prefixes of the same input (short reads).
		if _, rerr := scratch.ReadResponse(bytes.NewReader(data)); rerr != nil &&
			!errors.Is(rerr, ErrBadFrame) && !errors.Is(rerr, ErrFrameTooLarge) {
			// io errors (EOF, unexpected EOF) are fine for truncated input;
			// anything else typed is fine too — panics are the only failure.
			_ = rerr
		}
	})
}
