package diet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"oagrid/internal/core"
	"oagrid/internal/engine"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// MasterAgent is the registry the client queries for server daemons, the MA
// of the DIET hierarchy (the LA layer of real DIET is collapsed into it).
type MasterAgent struct {
	ln net.Listener

	mu   sync.Mutex
	seds []SeDInfo
}

// StartMasterAgent listens on addr ("127.0.0.1:0" for an ephemeral port).
func StartMasterAgent(addr string) (*MasterAgent, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diet: master agent listen: %w", err)
	}
	ma := &MasterAgent{ln: ln}
	go acceptLoop(ln, ma.handle)
	return ma, nil
}

// Addr returns the agent's listen address.
func (ma *MasterAgent) Addr() string { return ma.ln.Addr().String() }

// Close stops the agent.
func (ma *MasterAgent) Close() error { return ma.ln.Close() }

// SeDs returns a snapshot of the registered daemons. The slice is a copy
// taken under the mutex: callers may range over it while other SeDs keep
// registering concurrently without racing the registry's internal slice.
func (ma *MasterAgent) SeDs() []SeDInfo {
	ma.mu.Lock()
	defer ma.mu.Unlock()
	return append([]SeDInfo(nil), ma.seds...)
}

func (ma *MasterAgent) handle(req *Request) *Response {
	switch req.Kind {
	case KindRegister:
		if req.Register == nil {
			return &Response{Err: "register: empty payload"}
		}
		ma.mu.Lock()
		replaced := false
		for i := range ma.seds {
			if ma.seds[i].Cluster == req.Register.Cluster {
				ma.seds[i] = SeDInfo(*req.Register)
				replaced = true
				break
			}
		}
		if !replaced {
			ma.seds = append(ma.seds, SeDInfo(*req.Register))
		}
		ma.mu.Unlock()
		return &Response{Register: &RegisterResponse{Accepted: true}}
	case KindList:
		return &Response{List: &ListResponse{SeDs: ma.SeDs()}}
	default:
		return &Response{Err: fmt.Sprintf("master agent: unsupported request %q", req.Kind)}
	}
}

// SeD is the per-cluster server daemon: it computes performance vectors
// (protocol step 2) and executes assigned scenario sets (step 6) on its
// cluster, using the event-driven executor as the cluster's compute fabric.
type SeD struct {
	cluster *platform.Cluster
	opts    exec.Options
	ln      net.Listener
	// speed is the daemon's relative speed factor: 1.0 is the reference,
	// 0.5 advertises every performance-vector entry doubled so the
	// repartition hands this daemon proportionally smaller chunks.
	// Immutable after start. Execution itself stays on the cluster's base
	// timing — the factor shifts placement, never a chunk's reported
	// makespan, which keeps results bit-identical to serial replay.
	speed float64

	inFlight int64 // gauge of requests currently being served
	// draining is nonzero once Drain() ran: the daemon advertises the flag
	// on every beat so the scheduler stops placing new chunks on it.
	draining int32

	hbMu   sync.Mutex
	hbStop chan struct{}
	// hbAddr remembers the scheduler a heartbeat loop beacons to, so
	// Drain() can push an immediate flagged beat instead of waiting out the
	// ticker interval.
	hbAddr string
}

// StartSeD listens on addr and serves the cluster at the reference speed.
func StartSeD(addr string, cluster *platform.Cluster, opts exec.Options) (*SeD, error) {
	return StartSeDSpeed(addr, cluster, opts, 1.0)
}

// StartSeDSpeed is StartSeD with an explicit relative speed factor; values
// <= 0 read as 1.0 (the reference speed).
func StartSeDSpeed(addr string, cluster *platform.Cluster, opts exec.Options, speed float64) (*SeD, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	if speed <= 0 {
		speed = 1.0
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diet: SeD %s listen: %w", cluster.Name, err)
	}
	s := &SeD{cluster: cluster, opts: opts, ln: ln, speed: speed}
	go acceptLoop(ln, s.handle)
	return s, nil
}

// Addr returns the daemon's listen address.
func (s *SeD) Addr() string { return s.ln.Addr().String() }

// Close stops the daemon and its heartbeat loop.
func (s *SeD) Close() error {
	s.StopHeartbeats()
	return s.ln.Close()
}

// Cluster returns the served cluster.
func (s *SeD) Cluster() *platform.Cluster { return s.cluster }

// InFlight reports how many requests the daemon is serving right now.
func (s *SeD) InFlight() int { return int(atomic.LoadInt64(&s.inFlight)) }

// Speed reports the daemon's relative speed factor.
func (s *SeD) Speed() float64 { return s.speed }

// Draining reports whether Drain() has run.
func (s *SeD) Draining() bool { return atomic.LoadInt32(&s.draining) != 0 }

// Drain flips the daemon into graceful-drain mode: every subsequent
// heartbeat carries the Draining flag, so the scheduler stops placing new
// chunks while in-flight work finishes and banks. One flagged beat goes out
// immediately — a scale-down must not wait out the ticker interval to take
// effect. The daemon keeps serving until Close.
func (s *SeD) Drain() {
	atomic.StoreInt32(&s.draining, 1)
	s.hbMu.Lock()
	addr := s.hbAddr
	s.hbMu.Unlock()
	if addr != "" {
		s.beat(addr)
	}
}

// StartHeartbeats begins beaconing liveness to the scheduler at addr every
// interval. A beat carries the registration payload, so the first one — and
// any beat after an eviction — (re)registers the daemon. Successive calls
// replace the previous loop.
func (s *SeD) StartHeartbeats(schedAddr string, every time.Duration) {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	s.hbAddr = schedAddr
	if s.hbStop != nil {
		close(s.hbStop)
	}
	stop := make(chan struct{})
	s.hbStop = stop
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			s.beat(schedAddr)
			select {
			case <-stop:
				return
			case <-t.C:
			}
		}
	}()
}

// StopHeartbeats halts the heartbeat loop, simulating a silent daemon death
// for the scheduler's eviction logic (also called by Close).
func (s *SeD) StopHeartbeats() {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	if s.hbStop != nil {
		close(s.hbStop)
		s.hbStop = nil
	}
}

// beat sends one heartbeat; delivery is best-effort, the scheduler's
// deadline eviction handles sustained silence.
func (s *SeD) beat(schedAddr string) {
	_, _ = roundTrip(schedAddr, &Request{Kind: KindHeartbeat, Heartbeat: &HeartbeatRequest{
		Cluster:  s.cluster.Name,
		Addr:     s.Addr(),
		Procs:    s.cluster.Procs,
		InFlight: s.InFlight(),
		Speed:    s.speed,
		Draining: s.Draining(),
	}})
}

// RegisterWith announces the daemon to a master agent.
func (s *SeD) RegisterWith(maAddr string) error {
	resp, err := roundTrip(maAddr, &Request{Kind: KindRegister, Register: &RegisterRequest{
		Cluster: s.cluster.Name,
		Addr:    s.Addr(),
		Procs:   s.cluster.Procs,
	}})
	if err != nil {
		return err
	}
	if resp.Register == nil || !resp.Register.Accepted {
		return fmt.Errorf("diet: master agent rejected registration of %s", s.cluster.Name)
	}
	return nil
}

func (s *SeD) handle(req *Request) *Response {
	atomic.AddInt64(&s.inFlight, 1)
	defer atomic.AddInt64(&s.inFlight, -1)
	switch req.Kind {
	case KindPerf:
		return s.handlePerf(req.Perf)
	case KindExec:
		return s.handleExec(req.Exec)
	default:
		return &Response{Err: fmt.Sprintf("SeD %s: unsupported request %q", s.cluster.Name, req.Kind)}
	}
}

func (s *SeD) handlePerf(req *PerfRequest) *Response {
	if req == nil {
		return &Response{Err: "perf: empty payload"}
	}
	h, err := core.ByName(req.Heuristic)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	// One perf request is NS plan+evaluate jobs (k = 1..NS); answer it as a
	// single batched engine.Sweep so the plan cache and memoized timing are
	// shared across the k values. The sweep is bit-identical to the serial
	// loop it replaced, whatever the worker count.
	app := core.Application{Scenarios: req.Scenarios, Months: req.Months}
	vec, err := engine.PerformanceVector(engine.DES{}, app, s.cluster, h, engine.Options{Exec: s.opts}, 0)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	// A non-reference speed factor scales the advertised makespans (half
	// speed doubles them) so the repartition hands this daemon a
	// proportionally smaller share. Only the advertisement is scaled:
	// execution runs on the base timing, so chunk reports stay bit-identical
	// to their serial replay whatever the fleet's speed mix.
	if s.speed != 1.0 {
		scaled := make([]float64, len(vec))
		for i, v := range vec {
			scaled[i] = v / s.speed
		}
		vec = scaled
	}
	return &Response{Perf: &PerfResponse{
		Cluster: s.cluster.Name,
		Procs:   s.cluster.Procs,
		Vector:  vec,
	}}
}

func (s *SeD) handleExec(req *ExecRequest) *Response {
	if req == nil {
		return &Response{Err: "exec: empty payload"}
	}
	if len(req.ScenarioIDs) == 0 {
		return &Response{Exec: &ExecResponse{Cluster: s.cluster.Name}}
	}
	h, err := core.ByName(req.Heuristic)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	app := core.Application{Scenarios: len(req.ScenarioIDs), Months: req.Months}
	alloc, err := h.Plan(app, s.cluster.Timing, s.cluster.Procs)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	res, err := exec.Run(app, s.cluster.Timing, s.cluster.Procs, alloc, s.opts)
	if err != nil {
		return &Response{Err: err.Error()}
	}
	return &Response{Exec: &ExecResponse{
		Cluster:    s.cluster.Name,
		Makespan:   res.Makespan,
		Allocation: alloc,
		Scenarios:  len(req.ScenarioIDs),
	}}
}

// Client drives the six-step protocol against a master agent.
type Client struct {
	MAAddr string
}

// SubmitResult reports one full protocol run.
type SubmitResult struct {
	// Vectors maps cluster name to its performance vector (steps 2–3).
	Vectors map[string][]float64
	// Repartition is the Algorithm-1 outcome (step 4), with Counts in the
	// order of Clusters.
	Repartition core.RepartitionResult
	// Clusters lists cluster names in the order the repartition indexes them.
	Clusters []string
	// Reports holds each cluster's execution answer (step 6).
	Reports []ExecResponse
	// Makespan is the global result: the slowest cluster's makespan.
	Makespan float64
}

// Submit runs the whole Figure-9 protocol for one experiment.
func (c *Client) Submit(app core.Application, heuristic string) (*SubmitResult, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	// Discover the clusters.
	resp, err := roundTrip(c.MAAddr, &Request{Kind: KindList, List: &ListRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.List == nil || len(resp.List.SeDs) == 0 {
		return nil, fmt.Errorf("diet: no SeD registered at %s", c.MAAddr)
	}
	seds := resp.List.SeDs

	// Steps 1–3: gather performance vectors concurrently.
	type vecOrErr struct {
		i   int
		vec []float64
		err error
	}
	ch := make(chan vecOrErr, len(seds))
	for i, sed := range seds {
		go func(i int, sed SeDInfo) {
			r, err := roundTrip(sed.Addr, &Request{Kind: KindPerf, Perf: &PerfRequest{
				Scenarios: app.Scenarios,
				Months:    app.Months,
				Heuristic: heuristic,
			}})
			if err != nil {
				ch <- vecOrErr{i: i, err: err}
				return
			}
			if r.Perf == nil {
				ch <- vecOrErr{i: i, err: fmt.Errorf("diet: SeD %s returned no vector", sed.Cluster)}
				return
			}
			ch <- vecOrErr{i: i, vec: r.Perf.Vector}
		}(i, sed)
	}
	perf := make([][]float64, len(seds))
	for range seds {
		v := <-ch
		if v.err != nil {
			return nil, v.err
		}
		perf[v.i] = v.vec
	}

	// Step 4: the repartition.
	rep, err := core.Repartition(perf)
	if err != nil {
		return nil, err
	}

	// Step 5–6: dispatch each cluster's share and gather reports.
	out := &SubmitResult{
		Vectors:     make(map[string][]float64, len(seds)),
		Repartition: rep,
	}
	for i, sed := range seds {
		out.Vectors[sed.Cluster] = perf[i]
		out.Clusters = append(out.Clusters, sed.Cluster)
	}
	// Scenario IDs per cluster, in assignment order.
	ids := make([][]int, len(seds))
	for scenario, cl := range rep.Assignment {
		ids[cl] = append(ids[cl], scenario)
	}
	for i, sed := range seds {
		if len(ids[i]) == 0 {
			continue
		}
		r, err := roundTrip(sed.Addr, &Request{Kind: KindExec, Exec: &ExecRequest{
			ScenarioIDs: ids[i],
			Months:      app.Months,
			Heuristic:   heuristic,
		}})
		if err != nil {
			return nil, err
		}
		if r.Exec == nil {
			return nil, fmt.Errorf("diet: SeD %s returned no execution report", sed.Cluster)
		}
		out.Reports = append(out.Reports, *r.Exec)
		if r.Exec.Makespan > out.Makespan {
			out.Makespan = r.Exec.Makespan
		}
	}
	return out, nil
}
