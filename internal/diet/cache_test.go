package diet

import (
	"fmt"
	"testing"
)

// TestPeerVersionCacheBounded pins the capability cache's bound: a client
// sweeping arbitrarily many daemon addresses (a big ring, a port scan, a
// long-lived injector) must not grow the per-address version cache past its
// cap — eviction keeps it a cache, not a leak.
func TestPeerVersionCacheBounded(t *testing.T) {
	for i := 0; i < 3*maxPeerVersions; i++ {
		RecordPeerVersion(fmt.Sprintf("10.9.%d.%d:7714", i/250, i%250), ProtocolV4)
	}
	if n := PeerVersionCacheLen(); n > maxPeerVersions {
		t.Fatalf("peer-version cache holds %d entries, cap is %d", n, maxPeerVersions)
	}
	// A freshly recorded entry is readable back (the newest insert is never
	// the eviction victim).
	RecordPeerVersion("fresh.example:1", ProtocolVersion)
	if got := PeerVersion("fresh.example:1"); got != ProtocolVersion {
		t.Fatalf("fresh entry reads back %d, want %d", got, ProtocolVersion)
	}
	// Updating a known address must not evict anyone.
	before := PeerVersionCacheLen()
	RecordPeerVersion("fresh.example:1", ProtocolV4)
	if got := PeerVersionCacheLen(); got != before {
		t.Fatalf("updating a known address changed the cache size %d -> %d", before, got)
	}
}
