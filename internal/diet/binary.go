// Protocol v4: length-prefixed binary framing.
//
// Versions 1-3 encode every frame with the legacy self-describing codec
// (gob), which re-transmits type definitions on every connection and burns
// the grid's hot path in reflection and per-frame allocations. Version 4
// replaces the wire *encoding* without touching the wire *semantics*: the
// same Request/Response envelopes travel as length-prefixed binary frames
// with a fixed 12-byte header and hand-rolled little-endian payloads for
// the hot frame kinds (submit, exec, perf, heartbeat, progress, chunk and
// campaign results). Cold control-plane kinds (cancel, info, stats, ...)
// ride inside a JSON-envelope frame — self-contained, codec-stateless, and
// off the hot path by construction.
//
// Frame layout (all integers little-endian):
//
//	offset 0:  magic   [4]byte  0xF7 'O' 'A' '4'
//	offset 4:  version uint8    negotiated protocol version (>= 4)
//	offset 5:  kind    uint8    frame kind (fk* constants)
//	offset 6:  flags   uint16   reserved, zero; receivers ignore unknown bits
//	offset 8:  length  uint32   payload byte count (<= MaxFramePayload)
//	offset 12: payload
//
// A v4 connection carries the magic in its very first bytes, so a server
// distinguishes binary peers from legacy gob peers by peeking 4 bytes —
// no extra negotiation round trip. Whether a client may *open* a binary
// connection at all is decided by the existing min-version machinery: it
// speaks binary only to peers it has already seen answer with version >= 4
// (see PeerVersion in wire.go).
//
// Within a payload: strings are u32 length + bytes, []int is u32 count +
// count x u64 (two's-complement int64), []float64 is u32 count + count x
// u64 (IEEE-754 bits), bools are one byte, durations are int64 nanoseconds.
// Decoding never panics on corrupt input: every read is bounds-checked and
// every count is sanity-capped against the remaining payload, so a hostile
// length prefix costs an error, not memory.
package diet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"oagrid/internal/core"
)

// Frame header geometry.
const (
	frameHeaderSize = 12
	// MaxFramePayload bounds one frame's payload. The largest legitimate
	// frame is a CampaignResult with thousands of chunk reports — well under
	// a megabyte; 16 MiB leaves room without letting a hostile length prefix
	// reserve unbounded memory.
	MaxFramePayload = 16 << 20
)

// frameMagic opens every v4 frame. The first byte is deliberately outside
// ASCII so text protocols and legacy gob streams (whose first byte is a
// small varint message length) cannot collide with it by accident.
var frameMagic = [4]byte{0xF7, 'O', 'A', '4'}

// Frame kinds. Requests and responses use disjoint ranges so a decoder can
// reject a response frame arriving where a request is expected.
const (
	fkSubmitReq    = 0x01
	fkExecReq      = 0x02
	fkPerfReq      = 0x03
	fkHeartbeatReq = 0x04
	fkAttachReq    = 0x05
	fkResultReq    = 0x06
	// fkJSONReq wraps the full Request envelope as JSON: the escape hatch
	// for cold request kinds (register, list, stats, cancel, info, ...).
	fkJSONReq = 0x1F

	fkErr            = 0x21
	fkSubmitResp     = 0x22
	fkExecResp       = 0x23
	fkPerfResp       = 0x24
	fkHeartbeatResp  = 0x25
	fkAttachResp     = 0x26
	fkProgress       = 0x27
	fkCampaignResult = 0x28
	// fkJSONResp wraps the full Response envelope as JSON.
	fkJSONResp = 0x3F
)

// Typed decode errors. ErrFrameTooLarge is the verdict on a hostile or
// corrupt length prefix; ErrBadFrame covers every other malformed frame
// (bad magic, truncated payload, unknown kind, trailing garbage).
var (
	ErrFrameTooLarge = errors.New("diet: frame exceeds size bound")
	ErrBadFrame      = errors.New("diet: malformed v4 frame")
)

// FrameHeader is one parsed v4 frame header.
type FrameHeader struct {
	Version byte
	Kind    byte
	Flags   uint16
	Length  uint32
}

// IsBinaryMagic reports whether b opens with the v4 frame magic.
//
//oalint:hotpath
func IsBinaryMagic(b []byte) bool {
	return len(b) >= 4 && b[0] == frameMagic[0] && b[1] == frameMagic[1] && b[2] == frameMagic[2] && b[3] == frameMagic[3]
}

// parseFrameHeader validates the fixed header. It does not look at the
// payload.
//
//oalint:hotpath
func parseFrameHeader(b []byte) (FrameHeader, error) {
	var h FrameHeader
	if len(b) < frameHeaderSize {
		return h, fmt.Errorf("%w: short header (%d bytes)", ErrBadFrame, len(b))
	}
	if !IsBinaryMagic(b) {
		return h, fmt.Errorf("%w: bad magic % x", ErrBadFrame, b[:4])
	}
	h.Version = b[4]
	h.Kind = b[5]
	h.Flags = binary.LittleEndian.Uint16(b[6:8])
	h.Length = binary.LittleEndian.Uint32(b[8:12])
	if h.Length > MaxFramePayload {
		return h, fmt.Errorf("%w: length prefix %d (max %d)", ErrFrameTooLarge, h.Length, MaxFramePayload)
	}
	return h, nil
}

// ParseFrame splits one whole in-memory frame into header and payload —
// the pure, reader-free half of frame decoding (the fuzz target).
//
//oalint:hotpath
func ParseFrame(b []byte) (FrameHeader, []byte, error) {
	h, err := parseFrameHeader(b)
	if err != nil {
		return h, nil, err
	}
	if len(b)-frameHeaderSize < int(h.Length) {
		return h, nil, fmt.Errorf("%w: payload truncated (%d of %d bytes)", ErrBadFrame, len(b)-frameHeaderSize, h.Length)
	}
	return h, b[frameHeaderSize : frameHeaderSize+int(h.Length)], nil
}

// ---- append-style encoding primitives -------------------------------------

//oalint:hotpath
func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

//oalint:hotpath
func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

//oalint:hotpath
func appendInt(b []byte, v int) []byte { return appendU64(b, uint64(int64(v))) }

//oalint:hotpath
func appendF64(b []byte, v float64) []byte { return appendU64(b, math.Float64bits(v)) }

//oalint:hotpath
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

//oalint:hotpath
func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

//oalint:hotpath
func appendInts(b []byte, v []int) []byte {
	b = appendU32(b, uint32(len(v)))
	for _, x := range v {
		b = appendInt(b, x)
	}
	return b
}

//oalint:hotpath
func appendFloats(b []byte, v []float64) []byte {
	b = appendU32(b, uint32(len(v)))
	for _, x := range v {
		b = appendF64(b, x)
	}
	return b
}

// beginFrame reserves a header at the end of b; finishFrame patches the
// length once the payload is appended.
//
//oalint:hotpath
func beginFrame(b []byte, ver, kind byte) ([]byte, int) {
	start := len(b)
	b = append(b, frameMagic[0], frameMagic[1], frameMagic[2], frameMagic[3],
		ver, kind, 0, 0, 0, 0, 0, 0)
	return b, start
}

//oalint:hotpath
func finishFrame(b []byte, start int) ([]byte, error) {
	payload := len(b) - start - frameHeaderSize
	if payload > MaxFramePayload {
		return nil, fmt.Errorf("%w: encoding %d-byte payload", ErrFrameTooLarge, payload)
	}
	binary.LittleEndian.PutUint32(b[start+8:start+12], uint32(payload))
	return b, nil
}

//oalint:hotpath
func appendExecResponse(b []byte, e *ExecResponse) []byte {
	b = appendStr(b, e.Cluster)
	b = appendF64(b, e.Makespan)
	b = appendInt(b, e.Scenarios)
	b = appendInt(b, e.Round)
	b = appendInt(b, e.FirstScenario)
	b = appendInts(b, e.Allocation.Groups)
	b = appendInt(b, e.Allocation.PostProcs)
	b = appendStr(b, e.Allocation.Heuristic)
	return b
}

// AppendRequestFrame appends req encoded as one v4 frame to buf and returns
// the extended slice. Hot request kinds get the hand-rolled layout; every
// other kind travels as a JSON envelope frame. The append never aliases
// req: buf is the only memory written.
//
//oalint:hotpath
func AppendRequestFrame(buf []byte, req *Request) ([]byte, error) {
	ver := req.Version
	if ver < ProtocolV4 || ver > 0xFF {
		ver = ProtocolV4
	}
	switch {
	case req.Kind == KindSubmit && req.Submit != nil:
		b, start := beginFrame(buf, byte(ver), fkSubmitReq)
		r := req.Submit
		b = appendInt(b, r.Scenarios)
		b = appendInt(b, r.Months)
		b = appendStr(b, r.Heuristic)
		var bits byte
		if r.Wait {
			bits |= 1
		}
		if r.Progress {
			bits |= 2
		}
		b = append(b, bits)
		b = appendInt(b, r.Priority)
		b = appendU64(b, uint64(r.Deadline))
		b = appendU32(b, uint32(len(r.Labels)))
		for k, v := range r.Labels {
			b = appendStr(b, k)
			b = appendStr(b, v)
		}
		return finishFrame(b, start)
	case req.Kind == KindExec && req.Exec != nil:
		b, start := beginFrame(buf, byte(ver), fkExecReq)
		r := req.Exec
		b = appendInt(b, r.Months)
		b = appendStr(b, r.Heuristic)
		b = appendInts(b, r.ScenarioIDs)
		return finishFrame(b, start)
	case req.Kind == KindPerf && req.Perf != nil:
		b, start := beginFrame(buf, byte(ver), fkPerfReq)
		r := req.Perf
		b = appendInt(b, r.Scenarios)
		b = appendInt(b, r.Months)
		b = appendStr(b, r.Heuristic)
		return finishFrame(b, start)
	case req.Kind == KindHeartbeat && req.Heartbeat != nil:
		b, start := beginFrame(buf, byte(ver), fkHeartbeatReq)
		r := req.Heartbeat
		b = appendStr(b, r.Cluster)
		b = appendStr(b, r.Addr)
		b = appendInt(b, r.Procs)
		b = appendInt(b, r.InFlight)
		// Speed and Draining are v7 fields: a frame stamped with a lower
		// negotiated version must stay byte-exact for pre-v7 peers, whose
		// strict decoder rejects trailing payload bytes.
		if ver >= ProtocolV7 {
			b = appendF64(b, r.Speed)
			b = appendBool(b, r.Draining)
		}
		return finishFrame(b, start)
	case req.Kind == KindAttach && req.Attach != nil:
		b, start := beginFrame(buf, byte(ver), fkAttachReq)
		b = appendU64(b, req.Attach.ID)
		b = appendBool(b, req.Attach.Progress)
		return finishFrame(b, start)
	case req.Kind == KindResult && req.Result != nil:
		b, start := beginFrame(buf, byte(ver), fkResultReq)
		b = appendU64(b, req.Result.ID)
		return finishFrame(b, start)
	default:
		data, err := json.Marshal(req)
		if err != nil {
			return nil, fmt.Errorf("diet: encoding %s request envelope: %w", req.Kind, err)
		}
		b, start := beginFrame(buf, byte(ver), fkJSONReq)
		b = append(b, data...)
		return finishFrame(b, start)
	}
}

// AppendResponseFrame appends resp encoded as one v4 frame to buf. An error
// response becomes an fkErr frame whatever else the envelope carries,
// mirroring the legacy codec's Err-field-wins contract.
//
//oalint:hotpath
func AppendResponseFrame(buf []byte, resp *Response) ([]byte, error) {
	ver := resp.Version
	if ver < ProtocolV4 || ver > 0xFF {
		ver = ProtocolV4
	}
	switch {
	case resp.Err != "":
		b, start := beginFrame(buf, byte(ver), fkErr)
		b = appendStr(b, resp.Err)
		return finishFrame(b, start)
	case resp.Submit != nil:
		b, start := beginFrame(buf, byte(ver), fkSubmitResp)
		r := resp.Submit
		b = appendU64(b, r.ID)
		b = appendBool(b, r.Accepted)
		b = appendStr(b, r.Reason)
		b = appendInt(b, r.QueueDepth)
		// Code is a v5 field: a frame stamped with a lower negotiated
		// version must stay byte-exact for pre-v5 peers, whose strict
		// decoder rejects trailing payload bytes.
		if ver >= ProtocolV5 {
			b = appendStr(b, r.Code)
		}
		return finishFrame(b, start)
	case resp.Exec != nil:
		b, start := beginFrame(buf, byte(ver), fkExecResp)
		b = appendExecResponse(b, resp.Exec)
		return finishFrame(b, start)
	case resp.Perf != nil:
		b, start := beginFrame(buf, byte(ver), fkPerfResp)
		r := resp.Perf
		b = appendStr(b, r.Cluster)
		b = appendInt(b, r.Procs)
		b = appendFloats(b, r.Vector)
		return finishFrame(b, start)
	case resp.Heartbeat != nil:
		b, start := beginFrame(buf, byte(ver), fkHeartbeatResp)
		b = appendBool(b, resp.Heartbeat.OK)
		return finishFrame(b, start)
	case resp.Attach != nil:
		b, start := beginFrame(buf, byte(ver), fkAttachResp)
		r := resp.Attach
		b = appendU64(b, r.ID)
		b = appendBool(b, r.Found)
		b = appendStr(b, r.Status)
		b = appendInt(b, r.Done)
		b = appendInt(b, r.Total)
		return finishFrame(b, start)
	case resp.Progress != nil:
		b, start := beginFrame(buf, byte(ver), fkProgress)
		u := resp.Progress
		b = appendU64(b, u.ID)
		b = appendStr(b, u.Stage)
		b = appendInt(b, u.Done)
		b = appendInt(b, u.Total)
		b = appendInt(b, u.Requeued)
		b = appendU32(b, uint32(len(u.Planned)))
		for i := range u.Planned {
			b = appendStr(b, u.Planned[i].Cluster)
			b = appendInt(b, u.Planned[i].Scenarios)
		}
		if u.Chunk != nil {
			b = append(b, 1)
			b = appendExecResponse(b, u.Chunk)
		} else {
			b = append(b, 0)
		}
		return finishFrame(b, start)
	case resp.Result != nil:
		b, start := beginFrame(buf, byte(ver), fkCampaignResult)
		r := resp.Result
		b = appendU64(b, r.ID)
		b = appendStr(b, r.Status)
		b = appendF64(b, r.Makespan)
		b = appendInt(b, r.Requeues)
		b = appendInt(b, r.Done)
		b = appendInt(b, r.Total)
		b = appendStr(b, r.Err)
		b = appendU32(b, uint32(len(r.Reports)))
		for i := range r.Reports {
			b = appendExecResponse(b, &r.Reports[i])
		}
		return finishFrame(b, start)
	default:
		data, err := json.Marshal(resp)
		if err != nil {
			return nil, fmt.Errorf("diet: encoding response envelope: %w", err)
		}
		b, start := beginFrame(buf, byte(ver), fkJSONResp)
		b = append(b, data...)
		return finishFrame(b, start)
	}
}

// ---- decoding -------------------------------------------------------------

// byteReader walks a payload with bounds-checked reads. The first failure
// latches err; subsequent reads return zero values, so decode code reads
// straight through and checks err once.
type byteReader struct {
	b   []byte
	off int
	err error
}

//oalint:hotpath
func (r *byteReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated %s at offset %d", ErrBadFrame, what, r.off)
	}
}

//oalint:hotpath
func (r *byteReader) u8(what string) byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

//oalint:hotpath
func (r *byteReader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

//oalint:hotpath
func (r *byteReader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

//oalint:hotpath
func (r *byteReader) int(what string) int { return int(int64(r.u64(what))) }

//oalint:hotpath
func (r *byteReader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

//oalint:hotpath
func (r *byteReader) bool(what string) bool { return r.u8(what) != 0 }

//oalint:hotpath
func (r *byteReader) bytes(what string) []byte {
	n := r.u32(what)
	if r.err != nil || r.off+int(n) > len(r.b) {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}

// count reads a collection length and sanity-caps it against the bytes
// remaining (elemSize is a lower bound on one element's encoding), so a
// corrupt count cannot drive a huge preallocation.
//
//oalint:hotpath
func (r *byteReader) count(what string, elemSize int) int {
	n := r.u32(what)
	if r.err != nil {
		return 0
	}
	if int(n) > (len(r.b)-r.off)/elemSize {
		r.fail(what + " count") //oalint:allow hotpath corrupt-frame error branch, never taken on well-formed frames
		return 0
	}
	return int(n)
}

// done demands the payload was consumed exactly; trailing garbage means a
// framing bug or a tampered frame, and silently ignoring it would let two
// peers disagree about what was said.
//
//oalint:hotpath
func (r *byteReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing payload bytes", ErrBadFrame, len(r.b)-r.off)
	}
	return nil
}

// maxInternedStrings bounds the decoder's string-intern table so a hostile
// peer cannot grow it without bound; past the cap strings just allocate.
const maxInternedStrings = 1024

// FrameDecoder decodes v4 frames. It is NOT safe for concurrent use.
//
// In scratch mode (Retain == false) decoded envelopes, payload structs and
// slices live in the decoder and are overwritten by the next Decode/Read
// call — the zero-allocation mode for servers, which consume a request
// fully before touching the connection again. With Retain set, every
// decoded value is freshly allocated and safe to keep; clients use this
// because they hand chunk reports and results to code that outlives the
// connection. Strings are interned through a small table in both modes
// (strings are immutable, so sharing them is always safe).
type FrameDecoder struct {
	Retain bool

	// payload is the frame-read scratch buffer (ReadRequest/ReadResponse).
	payload []byte
	hdr     [frameHeaderSize]byte

	strings map[string]string

	req  Request
	resp Response

	submitReq SubmitRequest
	execReq   ExecRequest
	perfReq   PerfRequest
	hbReq     HeartbeatRequest
	attachReq AttachRequest
	resultReq ResultRequest

	submitResp SubmitResponse
	execResp   ExecResponse
	perfResp   PerfResponse
	hbResp     HeartbeatResponse
	attachResp AttachResponse
	progress   ProgressUpdate
	chunk      ExecResponse
	result     CampaignResult

	ids     []int
	groups  []int
	vector  []float64
	planned []PlannedChunk
	reports []ExecResponse
}

// str decodes a string, interning it so repeated cluster/heuristic/status
// names cost zero allocations after the first sighting.
//
//oalint:hotpath
func (d *FrameDecoder) str(r *byteReader, what string) string {
	b := r.bytes(what)
	if len(b) == 0 {
		return ""
	}
	if d.strings == nil {
		d.strings = make(map[string]string, 16)
	}
	if s, ok := d.strings[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	if len(d.strings) < maxInternedStrings {
		d.strings[s] = s
	}
	return s
}

//oalint:hotpath
func (d *FrameDecoder) intSlice(r *byteReader, scratch *[]int, what string) []int {
	n := r.count(what, 8)
	if n == 0 {
		return nil
	}
	var out []int
	if d.Retain || scratch == nil {
		out = make([]int, 0, n)
	} else {
		if cap(*scratch) < n {
			*scratch = make([]int, 0, n)
		}
		out = (*scratch)[:0]
	}
	for i := 0; i < n; i++ {
		out = append(out, r.int(what))
	}
	if scratch != nil && !d.Retain {
		*scratch = out
	}
	return out
}

//oalint:hotpath
func (d *FrameDecoder) floatSlice(r *byteReader, scratch *[]float64, what string) []float64 {
	n := r.count(what, 8)
	if n == 0 {
		return nil
	}
	var out []float64
	if d.Retain || scratch == nil {
		out = make([]float64, 0, n)
	} else {
		if cap(*scratch) < n {
			*scratch = make([]float64, 0, n)
		}
		out = (*scratch)[:0]
	}
	for i := 0; i < n; i++ {
		out = append(out, r.f64(what))
	}
	if scratch != nil && !d.Retain {
		*scratch = out
	}
	return out
}

// decodeExecResponse fills e from r. groups selects the scratch slice for
// the allocation's processor groups (nil forces a fresh allocation, used
// where several ExecResponses share one frame).
//
//oalint:hotpath
func (d *FrameDecoder) decodeExecResponse(r *byteReader, e *ExecResponse, groups *[]int) {
	e.Cluster = d.str(r, "exec cluster")
	e.Makespan = r.f64("exec makespan")
	e.Scenarios = r.int("exec scenarios")
	e.Round = r.int("exec round")
	e.FirstScenario = r.int("exec first scenario")
	e.Allocation = core.Allocation{
		Groups:    d.intSlice(r, groups, "exec groups"),
		PostProcs: r.int("exec post procs"),
		Heuristic: d.str(r, "exec alloc heuristic"),
	}
}

// DecodeRequestFrame decodes one request frame payload. In scratch mode the
// returned Request and its payload structs are owned by the decoder and
// valid only until the next decode.
//
//oalint:hotpath
func (d *FrameDecoder) DecodeRequestFrame(hdr FrameHeader, payload []byte) (*Request, error) {
	req := &d.req
	if d.Retain {
		req = &Request{}
	}
	*req = Request{Version: int(hdr.Version)}
	r := &byteReader{b: payload}
	switch hdr.Kind {
	case fkSubmitReq:
		s := &d.submitReq
		if d.Retain {
			s = &SubmitRequest{}
		}
		*s = SubmitRequest{
			Scenarios: r.int("submit scenarios"),
			Months:    r.int("submit months"),
			Heuristic: d.str(r, "submit heuristic"),
		}
		bits := r.u8("submit flags")
		s.Wait = bits&1 != 0
		s.Progress = bits&2 != 0
		s.Priority = r.int("submit priority")
		s.Deadline = time.Duration(r.u64("submit deadline"))
		// Labels are retained by the scheduler for the campaign's lifetime,
		// so they are always freshly allocated, never decoder scratch.
		if n := r.count("submit labels", 8); n > 0 {
			s.Labels = make(map[string]string, n)
			for i := 0; i < n; i++ {
				k := d.str(r, "submit label key")
				s.Labels[k] = d.str(r, "submit label value")
			}
		}
		req.Kind, req.Submit = KindSubmit, s
	case fkExecReq:
		e := &d.execReq
		if d.Retain {
			e = &ExecRequest{}
		}
		*e = ExecRequest{
			Months:    r.int("exec months"),
			Heuristic: d.str(r, "exec heuristic"),
		}
		e.ScenarioIDs = d.intSlice(r, &d.ids, "exec scenario ids")
		req.Kind, req.Exec = KindExec, e
	case fkPerfReq:
		p := &d.perfReq
		if d.Retain {
			p = &PerfRequest{}
		}
		*p = PerfRequest{
			Scenarios: r.int("perf scenarios"),
			Months:    r.int("perf months"),
			Heuristic: d.str(r, "perf heuristic"),
		}
		req.Kind, req.Perf = KindPerf, p
	case fkHeartbeatReq:
		h := &d.hbReq
		if d.Retain {
			h = &HeartbeatRequest{}
		}
		*h = HeartbeatRequest{
			Cluster:  d.str(r, "heartbeat cluster"),
			Addr:     d.str(r, "heartbeat addr"),
			Procs:    r.int("heartbeat procs"),
			InFlight: r.int("heartbeat inflight"),
		}
		// Mirror the encoder's version gate: a pre-v7 peer's frame ends at
		// InFlight, and reading past it would fail the exhausted payload.
		if hdr.Version >= ProtocolV7 {
			h.Speed = r.f64("heartbeat speed")
			h.Draining = r.bool("heartbeat draining")
		}
		req.Kind, req.Heartbeat = KindHeartbeat, h
	case fkAttachReq:
		a := &d.attachReq
		if d.Retain {
			a = &AttachRequest{}
		}
		*a = AttachRequest{ID: r.u64("attach id"), Progress: r.bool("attach progress")}
		req.Kind, req.Attach = KindAttach, a
	case fkResultReq:
		rr := &d.resultReq
		if d.Retain {
			rr = &ResultRequest{}
		}
		*rr = ResultRequest{ID: r.u64("result id")}
		req.Kind, req.Result = KindResult, rr
	case fkJSONReq:
		fresh := &Request{}
		if err := json.Unmarshal(payload, fresh); err != nil {
			return nil, fmt.Errorf("%w: request envelope: %v", ErrBadFrame, err)
		}
		if fresh.Version == 0 {
			fresh.Version = int(hdr.Version)
		}
		return fresh, nil
	default:
		return nil, fmt.Errorf("%w: unknown request frame kind 0x%02x", ErrBadFrame, hdr.Kind)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeResponseFrame decodes one response frame payload. Scratch-mode
// ownership rules match DecodeRequestFrame. An fkErr frame decodes into a
// Response with Err set, like the legacy codec's error envelope.
//
//oalint:hotpath
func (d *FrameDecoder) DecodeResponseFrame(hdr FrameHeader, payload []byte) (*Response, error) {
	resp := &d.resp
	if d.Retain {
		resp = &Response{}
	}
	*resp = Response{Version: int(hdr.Version)}
	r := &byteReader{b: payload}
	switch hdr.Kind {
	case fkErr:
		resp.Err = d.str(r, "error message")
	case fkSubmitResp:
		s := &d.submitResp
		if d.Retain {
			s = &SubmitResponse{}
		}
		*s = SubmitResponse{
			ID:       r.u64("submit id"),
			Accepted: r.bool("submit accepted"),
			Reason:   d.str(r, "submit reason"),
		}
		s.QueueDepth = r.int("submit queue depth")
		// Mirror the encoder's version gate: a v4 daemon's frame ends at
		// QueueDepth, and reading past it would fail the exhausted payload.
		if hdr.Version >= ProtocolV5 {
			s.Code = d.str(r, "submit reject code")
		}
		resp.Submit = s
	case fkExecResp:
		e := &d.execResp
		if d.Retain {
			e = &ExecResponse{}
		}
		d.decodeExecResponse(r, e, &d.groups)
		resp.Exec = e
	case fkPerfResp:
		p := &d.perfResp
		if d.Retain {
			p = &PerfResponse{}
		}
		*p = PerfResponse{
			Cluster: d.str(r, "perf cluster"),
			Procs:   r.int("perf procs"),
		}
		p.Vector = d.floatSlice(r, &d.vector, "perf vector")
		resp.Perf = p
	case fkHeartbeatResp:
		h := &d.hbResp
		if d.Retain {
			h = &HeartbeatResponse{}
		}
		*h = HeartbeatResponse{OK: r.bool("heartbeat ok")}
		resp.Heartbeat = h
	case fkAttachResp:
		a := &d.attachResp
		if d.Retain {
			a = &AttachResponse{}
		}
		*a = AttachResponse{
			ID:     r.u64("attach id"),
			Found:  r.bool("attach found"),
			Status: d.str(r, "attach status"),
		}
		a.Done = r.int("attach done")
		a.Total = r.int("attach total")
		resp.Attach = a
	case fkProgress:
		u := &d.progress
		if d.Retain {
			u = &ProgressUpdate{}
		}
		*u = ProgressUpdate{
			ID:    r.u64("progress id"),
			Stage: d.str(r, "progress stage"),
		}
		u.Done = r.int("progress done")
		u.Total = r.int("progress total")
		u.Requeued = r.int("progress requeued")
		if n := r.count("progress planned", 12); n > 0 {
			var out []PlannedChunk
			if d.Retain {
				out = make([]PlannedChunk, 0, n)
			} else {
				if cap(d.planned) < n {
					d.planned = make([]PlannedChunk, 0, n)
				}
				out = d.planned[:0]
			}
			for i := 0; i < n; i++ {
				out = append(out, PlannedChunk{
					Cluster:   d.str(r, "planned cluster"),
					Scenarios: r.int("planned scenarios"),
				})
			}
			if !d.Retain {
				d.planned = out
			}
			u.Planned = out
		}
		if r.bool("progress has chunk") {
			c := &d.chunk
			if d.Retain {
				c = &ExecResponse{}
			}
			d.decodeExecResponse(r, c, &d.groups)
			u.Chunk = c
		}
		resp.Progress = u
	case fkCampaignResult:
		res := &d.result
		if d.Retain {
			res = &CampaignResult{}
		}
		*res = CampaignResult{
			ID:       r.u64("result id"),
			Status:   d.str(r, "result status"),
			Makespan: r.f64("result makespan"),
		}
		res.Requeues = r.int("result requeues")
		res.Done = r.int("result done")
		res.Total = r.int("result total")
		res.Err = d.str(r, "result error")
		if n := r.count("result reports", 13); n > 0 {
			var out []ExecResponse
			if d.Retain {
				out = make([]ExecResponse, n)
			} else {
				if cap(d.reports) < n {
					d.reports = make([]ExecResponse, n)
				}
				out = d.reports[:n]
			}
			for i := range out {
				// Each report keeps its own groups slice: a shared scratch
				// would alias across reports within the one frame.
				d.decodeExecResponse(r, &out[i], nil)
			}
			if !d.Retain {
				d.reports = out
			}
			res.Reports = out
		}
		resp.Result = res
	case fkJSONResp:
		fresh := &Response{}
		if err := json.Unmarshal(payload, fresh); err != nil {
			return nil, fmt.Errorf("%w: response envelope: %v", ErrBadFrame, err)
		}
		if fresh.Version == 0 {
			fresh.Version = int(hdr.Version)
		}
		return fresh, nil
	default:
		return nil, fmt.Errorf("%w: unknown response frame kind 0x%02x", ErrBadFrame, hdr.Kind)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return resp, nil
}
