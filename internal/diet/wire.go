package diet

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ---- wire accounting ------------------------------------------------------

var (
	wireTxBytes  atomic.Uint64
	wireRxBytes  atomic.Uint64
	wireTxFrames atomic.Uint64
	wireRxFrames atomic.Uint64
)

// WireCounters is a snapshot of the process-wide transport counters, across
// both codecs: bytes on every counted connection, frames at every encode and
// decode site. The load injector diffs two snapshots to report wire rates.
type WireCounters struct {
	BytesTx  uint64
	BytesRx  uint64
	FramesTx uint64
	FramesRx uint64
}

// WireStats snapshots the transport counters.
func WireStats() WireCounters {
	return WireCounters{
		BytesTx:  wireTxBytes.Load(),
		BytesRx:  wireRxBytes.Load(),
		FramesTx: wireTxFrames.Load(),
		FramesRx: wireRxFrames.Load(),
	}
}

// CountFrames adds to the frame counters on behalf of codec sites outside
// this package (the scheduler's gob streaming paths).
func CountFrames(tx, rx uint64) {
	if tx != 0 {
		wireTxFrames.Add(tx)
	}
	if rx != 0 {
		wireRxFrames.Add(rx)
	}
}

type countingConn struct{ net.Conn }

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	wireRxBytes.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	wireTxBytes.Add(uint64(n))
	return n, err
}

// CountConn wraps a connection so its traffic lands in the wire counters.
// Wrap once per connection, not per operation.
func CountConn(conn net.Conn) net.Conn { return countingConn{conn} }

// ---- codec selection ------------------------------------------------------

var forceLegacy atomic.Bool

// ForceLegacyCodec pins the whole process to the legacy gob codec: outbound
// exchanges never open binary connections and inbound binary connections are
// dropped on sniff. The -proto=legacy escape hatch on oarun/oaload for
// debugging wire issues or talking around a broken middlebox.
func ForceLegacyCodec(v bool) { forceLegacy.Store(v) }

// LegacyCodecForced reports whether ForceLegacyCodec is in effect.
func LegacyCodecForced() bool { return forceLegacy.Load() }

// maxPeerVersions bounds the capability cache the same way the scheduler
// bounds its tenant table (maxDynamicTenants): the cache is an optimization,
// not state, so a load injector sweeping thousands of ephemeral addresses —
// or a large ring — must not grow it without limit. At the cap an arbitrary
// entry is evicted; the victim's next exchange simply re-probes over the
// legacy codec and re-learns the peer's version from the response.
const maxPeerVersions = 1024

// peerVersions caches the highest protocol version each peer address has
// answered with, bounded by maxPeerVersions. Binary framing is opt-in per
// peer: the first exchange to an unknown address always uses the legacy
// codec (safe against any version), and the response's negotiated version
// unlocks binary for the follow-ups. A binary exchange that dies before its
// first response frame downgrades the entry, so a peer replaced by an older
// build self-heals on the next (legacy) exchange.
var (
	peerVersionsMu sync.Mutex
	peerVersions   = make(map[string]int)
)

// PeerVersion returns the cached protocol version for addr (0 if the peer
// has not answered yet, or its entry was evicted).
func PeerVersion(addr string) int {
	peerVersionsMu.Lock()
	defer peerVersionsMu.Unlock()
	return peerVersions[addr]
}

// RecordPeerVersion caches the protocol version addr answered with. A new
// address arriving at the cap evicts an arbitrary existing entry first;
// updates to known addresses never evict.
func RecordPeerVersion(addr string, ver int) {
	if ver < 0 {
		ver = 0
	}
	peerVersionsMu.Lock()
	defer peerVersionsMu.Unlock()
	if _, known := peerVersions[addr]; !known && len(peerVersions) >= maxPeerVersions {
		for victim := range peerVersions {
			if victim != addr {
				delete(peerVersions, victim)
				break
			}
		}
	}
	peerVersions[addr] = ver
}

// PeerVersionCacheLen reports the capability cache's current size (tests).
func PeerVersionCacheLen() int {
	peerVersionsMu.Lock()
	defer peerVersionsMu.Unlock()
	return len(peerVersions)
}

// UseBinary reports whether an exchange announcing version ver should open
// a binary connection to addr.
func UseBinary(addr string, ver int) bool {
	return ver >= ProtocolV4 && !forceLegacy.Load() && PeerVersion(addr) >= ProtocolV4
}

// ---- pooled buffers and decoders ------------------------------------------

// maxPooledBuf bounds what goes back in the pools: one giant campaign result
// should not pin megabytes of scratch on every P forever.
const maxPooledBuf = 1 << 20

type frameBuf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 4096)} }}

//oalint:hotpath
func getBuf() *frameBuf { return bufPool.Get().(*frameBuf) }

//oalint:hotpath
func putBuf(fb *frameBuf) {
	if cap(fb.b) > maxPooledBuf {
		return
	}
	fb.b = fb.b[:0]
	bufPool.Put(fb)
}

var decPool = sync.Pool{New: func() any { return &FrameDecoder{} }}

// GetFrameDecoder borrows a pooled decoder. Retain selects the ownership
// mode (see FrameDecoder); pass false only when every decoded value is
// consumed before the next Read/Decode call.
func GetFrameDecoder(retain bool) *FrameDecoder {
	d := decPool.Get().(*FrameDecoder)
	d.Retain = retain
	return d
}

// PutFrameDecoder returns a decoder to the pool. The caller must be done
// with every scratch-mode value the decoder handed out.
func PutFrameDecoder(d *FrameDecoder) {
	if cap(d.payload) > maxPooledBuf {
		d.payload = nil
	}
	decPool.Put(d)
}

// ---- frame I/O ------------------------------------------------------------

// readFrame reads one whole frame into the decoder's scratch buffer. The
// returned payload is valid until the next readFrame on this decoder.
//
//oalint:hotpath
func (d *FrameDecoder) readFrame(r io.Reader) (FrameHeader, []byte, error) {
	if _, err := io.ReadFull(r, d.hdr[:]); err != nil {
		return FrameHeader{}, nil, err
	}
	h, err := parseFrameHeader(d.hdr[:])
	if err != nil {
		return h, nil, err
	}
	if cap(d.payload) < int(h.Length) {
		d.payload = make([]byte, h.Length)
	}
	p := d.payload[:h.Length]
	if _, err := io.ReadFull(r, p); err != nil {
		return h, nil, fmt.Errorf("%w: reading %d-byte payload: %v", ErrBadFrame, h.Length, err)
	}
	wireRxFrames.Add(1)
	return h, p, nil
}

// ReadRequest reads and decodes one request frame.
//
//oalint:hotpath
func (d *FrameDecoder) ReadRequest(r io.Reader) (*Request, error) {
	h, p, err := d.readFrame(r)
	if err != nil {
		return nil, err
	}
	return d.DecodeRequestFrame(h, p)
}

// ReadResponse reads and decodes one response frame.
//
//oalint:hotpath
func (d *FrameDecoder) ReadResponse(r io.Reader) (*Response, error) {
	h, p, err := d.readFrame(r)
	if err != nil {
		return nil, err
	}
	return d.DecodeResponseFrame(h, p)
}

// WriteRequestFrame encodes req through a pooled buffer and writes it as a
// single frame.
//
//oalint:hotpath
func WriteRequestFrame(w io.Writer, req *Request) error {
	fb := getBuf()
	defer putBuf(fb)
	b, err := AppendRequestFrame(fb.b[:0], req)
	if err != nil {
		return err
	}
	fb.b = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	wireTxFrames.Add(1)
	return nil
}

// WriteResponseFrame encodes resp through a pooled buffer and writes it as
// a single frame.
//
//oalint:hotpath
func WriteResponseFrame(w io.Writer, resp *Response) error {
	fb := getBuf()
	defer putBuf(fb)
	b, err := AppendResponseFrame(fb.b[:0], resp)
	if err != nil {
		return err
	}
	fb.b = b
	if _, err := w.Write(b); err != nil {
		return err
	}
	wireTxFrames.Add(1)
	return nil
}

// WriteRawFrame writes an already-encoded frame (the serialize-once replay
// path: one encode shared by every subscriber).
//
//oalint:hotpath
func WriteRawFrame(w io.Writer, frame []byte) error {
	if _, err := w.Write(frame); err != nil {
		return err
	}
	wireTxFrames.Add(1)
	return nil
}

// roundTripBinary is the v4 one-shot exchange: one request frame out, one
// response frame back. Decoding retains, because round-trip callers keep
// what they get (perf vectors, chunk reports). A connection that dies before
// its response frame downgrades the peer-version cache so the next exchange
// re-probes over the legacy codec; the error still surfaces — exchanges are
// not retried here because submit is not idempotent.
func roundTripBinary(ctx context.Context, addr string, req *Request, d time.Duration) (*Response, error) {
	dialer := net.Dialer{Timeout: d}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diet: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	stop := AbortOnDone(ctx, conn)
	defer stop()
	if err := conn.SetDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	cc := CountConn(conn)
	if err := WriteRequestFrame(cc, req); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		RecordPeerVersion(addr, ProtocolV3)
		return nil, fmt.Errorf("diet: encoding %s request to %s: %w", req.Kind, addr, err)
	}
	dec := GetFrameDecoder(true)
	defer PutFrameDecoder(dec)
	resp, err := dec.ReadResponse(cc)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		// No response frame at all: the peer may no longer speak binary.
		RecordPeerVersion(addr, ProtocolV3)
		return nil, fmt.Errorf("diet: decoding %s response from %s: %w", req.Kind, addr, err)
	}
	RecordPeerVersion(addr, resp.Version)
	if resp.Err != "" {
		return nil, &RemoteError{Kind: req.Kind, Msg: resp.Err}
	}
	return resp, nil
}

// serveBinaryConn serves one sniffed v4 connection for a plain
// request/response agent: one request frame in, one response frame out.
// Scratch-mode decoding is safe here because the handler runs to completion
// before the decoder is reused or returned.
func serveBinaryConn(conn net.Conn, r io.Reader, w io.Writer, handle func(*Request) *Response) {
	dec := GetFrameDecoder(false)
	req, err := dec.ReadRequest(r)
	if err != nil {
		PutFrameDecoder(dec)
		return
	}
	resp := handle(req)
	PutFrameDecoder(dec)
	if resp.Version == 0 {
		resp.Version = NegotiateVersion(req.Version)
	}
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))
	_ = WriteResponseFrame(w, resp)
}
