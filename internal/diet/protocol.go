// Package diet is a loopback reimplementation of the grid middleware layer
// the paper deploys on (DIET): a master agent where per-cluster server
// daemons (SeDs) register, and a client that runs the six-step protocol of
// the paper's Figure 9 —
//
//	(1) the client sends the request (NS, NM) to the clusters;
//	(2) each cluster computes its performance vector with the knapsack model;
//	(3) the vectors return to the client;
//	(4) the client computes the scenario repartition (Algorithm 1);
//	(5) the client sends each cluster its share of the simulations;
//	(6) each cluster executes its share.
//
// Transport is TCP with two codecs: versions 1-3 speak the legacy
// self-describing codec (gob), version 4 speaks length-prefixed binary
// frames (see binary.go). The original study ran this over Grid'5000; here
// the "clusters" are simulated executors on loopback sockets, which
// preserves every protocol step and message shape.
package diet

import (
	"bufio"
	"context"
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"oagrid/internal/core"
)

// Protocol versions. Version 1 is the PR-2 wire format: envelopes without a
// Version field (gob decodes them with Version == 0, which reads as v1) and
// submit-wait connections that stream exactly two frames, the admission
// verdict and the final result. Version 2 adds per-campaign progress frames
// on submit-wait connections. Version 3 is the control plane: per-campaign
// submit options (priority, labels, deadline) plus the cancel / info /
// list-campaigns request kinds and the "cancelled" terminal status.
//
// Version 4 changes the encoding, not the semantics: envelopes travel as
// length-prefixed binary frames (binary.go) instead of gob. A v4 peer is
// one that understands binary framing; every binary connection is
// therefore v4 or later by construction, and v1-v3 peers keep the legacy
// codec end to end.
//
// Version 5 adds the SubmitResponse.Code rejection classifier. On the
// legacy gob and JSON-envelope codecs the field is a plain optional
// addition old peers ignore; on binary framing it is a trailing field of
// the fkSubmitResp payload, encoded and decoded only when the frame's
// negotiated version is >= 5 — the binary decoder rejects trailing bytes,
// so a v4 peer must keep seeing byte-exact v4 frames.
//
// Negotiation is min(client, server): the client states its version in the
// Request, the server answers every frame with the effective version, and
// features above the effective version stay off the wire. Old clients never
// see frames they cannot parse; new clients detect old servers from the
// verdict frame's version. A v2 client against a v3 server keeps the exact
// v2 behaviour: it cannot set the new submit fields, never receives the
// cancelled status for its own campaigns unless an operator cancels them,
// and the new request kinds simply do not appear on its wire. Codec choice
// rides the same machinery, sideways: servers accept both codecs on one
// port by sniffing the first bytes of a connection for the v4 frame magic,
// and clients open binary connections only to peers whose answered version
// was v4 or later (the per-address cache in wire.go) — the first exchange
// to any peer is always legacy-coded, so a v3 server never sees a frame it
// cannot parse.
// Version 6 adds the scheduler-ring kinds: forwarded-request envelopes
// (KindForward), ownership redirects (KindRedirect), ring membership pings
// (KindRingPing) and WAL segment shipping (KindSegment). None of them are
// hot-path frames, so on binary framing they ride the JSON cold-kind
// envelope — no new binary encodings, and a connection negotiated below v6
// never sees them: a daemon refuses the ring kinds outright below v6, which
// is also how a ring refuses membership to a pre-v6 peer.
//
// Version 7 adds the elastic-fleet heartbeat fields: Speed (the SeD's
// relative speed factor, scaling its advertised performance vectors so
// placement is speed-aware) and Draining (the SeD has stopped accepting new
// chunks and is finishing in-flight work before deregistering). On the
// legacy gob and JSON-envelope codecs both are plain optional additions old
// peers ignore; on binary framing they are trailing fields of the
// fkHeartbeatReq payload, encoded and decoded only when the frame's
// negotiated version is >= 7 — the same retrofit discipline as the v5
// SubmitResponse.Code, because the strict decoder rejects trailing bytes.
// A beat without them (any pre-v7 peer) reads as Speed 1.0, not draining.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
	ProtocolV3 = 3
	ProtocolV4 = 4
	ProtocolV5 = 5
	ProtocolV6 = 6
	ProtocolV7 = 7
	// ProtocolVersion is the highest version this build speaks.
	ProtocolVersion = ProtocolV7
)

// NegotiateVersion resolves the effective version of a connection from the
// version a peer announced (0 means a pre-versioning peer, i.e. v1).
func NegotiateVersion(peer int) int {
	if peer <= 0 {
		return ProtocolV1
	}
	if peer > ProtocolVersion {
		return ProtocolVersion
	}
	return peer
}

// Message kinds.
const (
	KindRegister = "register"
	KindList     = "list"
	KindPerf     = "perf"
	KindExec     = "exec"

	// Online-scheduler kinds (served by internal/grid.Scheduler).
	KindHeartbeat = "heartbeat"
	KindSubmit    = "submit"
	KindResult    = "result"
	KindStats     = "stats"
	// KindAttach reconnects to a previously admitted campaign by ID and
	// streams like a submit-wait connection: verdict, replayed + live
	// progress frames (protocol v2), final result.
	KindAttach = "attach"

	// Control-plane kinds (protocol v3). KindCancel aborts a campaign by ID
	// server-side; KindInfo fetches one campaign's control-plane snapshot;
	// KindListCampaigns enumerates the scheduler's campaign table with an
	// optional status/label filter. (The SeD directory already owns the name
	// "list", hence the longer kind string.)
	KindCancel        = "cancel"
	KindInfo          = "info"
	KindListCampaigns = "list-campaigns"

	// Scheduler-ring kinds (protocol v6). KindForward wraps another request
	// in a daemon-to-daemon envelope so the shard that owns a campaign
	// serves it; KindRedirect is the response-only fast path telling a v6
	// client which shard to talk to directly; KindRingPing is the ring
	// membership handshake and liveness beacon; KindSegment pulls a peer's
	// campaign-journal bytes for failover replay.
	KindForward  = "ring-forward"
	KindRedirect = "ring-redirect"
	KindRingPing = "ring-ping"
	KindSegment  = "ring-segment"
)

// RingKind reports whether kind is one of the v6 scheduler-ring kinds — the
// set a daemon must refuse on connections negotiated below ProtocolV6.
func RingKind(kind string) bool {
	switch kind {
	case KindForward, KindRingPing, KindSegment:
		return true
	}
	return false
}

// Request is the envelope every connection carries exactly one of.
type Request struct {
	// Version is the protocol version the client speaks (0 reads as v1, the
	// pre-versioning wire format).
	Version   int
	Kind      string
	Register  *RegisterRequest
	List      *ListRequest
	Perf      *PerfRequest
	Exec      *ExecRequest
	Heartbeat *HeartbeatRequest
	Submit    *SubmitRequest
	Result    *ResultRequest
	Stats     *StatsRequest
	Attach    *AttachRequest

	// Control plane (protocol v3).
	Cancel        *CancelRequest
	Info          *InfoRequest
	ListCampaigns *ListCampaignsRequest

	// Scheduler ring (protocol v6).
	Forward *ForwardRequest  `json:",omitempty"`
	Ring    *RingPingRequest `json:",omitempty"`
	Segment *SegmentRequest  `json:",omitempty"`
}

// Response is the reply envelope. A Submit connection with Wait set is the
// one place the protocol streams: the scheduler writes a Submit frame
// (admission verdict), then — at protocol v2 with SubmitRequest.Progress
// set — any number of Progress frames, and finally a Result frame on the
// same connection.
type Response struct {
	// Version is the effective protocol version the server negotiated for
	// this connection (0 reads as v1: a pre-versioning server).
	Version   int
	Err       string
	Register  *RegisterResponse
	List      *ListResponse
	Perf      *PerfResponse
	Exec      *ExecResponse
	Heartbeat *HeartbeatResponse
	Submit    *SubmitResponse
	Result    *CampaignResult
	Progress  *ProgressUpdate
	Stats     *StatsResponse
	Attach    *AttachResponse

	// Control plane (protocol v3).
	Cancel        *CancelResponse
	Info          *CampaignInfo
	ListCampaigns *ListCampaignsResponse

	// Scheduler ring (protocol v6).
	Redirect *RedirectInfo     `json:",omitempty"`
	Ring     *RingPingResponse `json:",omitempty"`
	Segment  *SegmentResponse  `json:",omitempty"`
}

// ForwardRequest is the daemon-to-daemon envelope of the scheduler ring
// (protocol v6): a shard that receives a request for a campaign it does not
// own wraps the original request and sends it to the owning shard. A
// forwarded request is always served locally by the receiver — Forward
// never nests, so a stale ownership view cannot loop a request around the
// ring. The response to a KindForward request is the inner response itself.
type ForwardRequest struct {
	// From is the forwarding shard's advertised ring address.
	From string
	// Inner is the original client request. Its own Forward field must be
	// nil.
	Inner *Request
}

// RedirectInfo is the ring's client fast path (protocol v6): a shard that
// receives a streaming request (Submit-wait, Attach) for a campaign another
// shard owns answers a single KindRedirect response instead of proxying the
// stream. A v6 client re-issues the request against Owner and remembers the
// mapping, so steady-state traffic goes direct; pre-v6 clients never see a
// redirect — the daemon forwards server-side on their behalf.
type RedirectInfo struct {
	// ID is the campaign the redirect is about (0 for request kinds that
	// carry no campaign).
	ID uint64
	// Owner is the ring address of the shard that owns the campaign.
	Owner string
}

// RingPingRequest is the ring membership handshake and liveness beacon
// (protocol v6). From identifies the pinging shard; Members is its
// configured member list, letting peers cross-check that both sides were
// started with the same ring.
type RingPingRequest struct {
	From    string
	Members []string
}

// RingPingResponse is the handshake verdict. Accepted=false means the
// responding daemon cannot be a ring member on this connection — in
// practice because the connection negotiated below protocol v6 (the daemon
// is version-capped or predates the ring kinds). Version is the negotiated
// version, so the pinging shard can report precisely why membership was
// refused while the refusing daemon keeps serving plain client traffic.
type RingPingResponse struct {
	Accepted bool
	Version  int
	// Owned counts campaigns the responding shard currently owns — a cheap
	// liveness payload the shard gauges surface.
	Owned int
}

// SegmentRequest pulls a peer's campaign-journal bytes (protocol v6) for
// failover replay. Generation names the journal incarnation the puller has
// seen (journals change generation when rotated or compacted); Offset is
// the byte position after the puller's last pull within that generation.
type SegmentRequest struct {
	From       string
	Generation uint64
	Offset     int64
}

// SegmentResponse carries journal bytes from Offset (of the request) to the
// journal's current end. Reset=true means the journal's generation changed
// (rotation/compaction rewrote the file): Data then starts at offset 0 of
// the new generation and the puller must replace, not append, its replica.
type SegmentResponse struct {
	Generation uint64
	Offset     int64
	Data       []byte
	Reset      bool
}

// RegisterRequest is a SeD announcing itself to the master agent.
type RegisterRequest struct {
	Cluster string
	Addr    string
	Procs   int
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct{ Accepted bool }

// ListRequest asks the master agent for the registered SeDs.
type ListRequest struct{}

// SeDInfo describes one registered server daemon.
type SeDInfo struct {
	Cluster string
	Addr    string
	Procs   int
}

// ListResponse carries the SeD directory.
type ListResponse struct{ SeDs []SeDInfo }

// PerfRequest is protocol step (1): the experiment parameters.
type PerfRequest struct {
	Scenarios int
	Months    int
	Heuristic string
}

// PerfResponse is step (3): the cluster's performance vector — entry k−1 is
// the makespan of k scenarios on this cluster.
type PerfResponse struct {
	Cluster string
	Procs   int
	Vector  []float64
}

// ExecRequest is step (5): the scenarios assigned to this cluster.
type ExecRequest struct {
	ScenarioIDs []int
	Months      int
	Heuristic   string
}

// ExecResponse is step (6): the execution report. Round and FirstScenario
// are filled in by the scheduler, not the SeD: the SeD evaluates one chunk
// without knowing which repartition round asked for it.
type ExecResponse struct {
	Cluster    string
	Makespan   float64
	Allocation core.Allocation
	Scenarios  int
	// Round is the repartition round that dispatched the chunk (0 for the
	// first attempt; higher after requeues). Rounds run sequentially, so a
	// campaign's makespan is the sum of per-round chunk maxima.
	Round int
	// FirstScenario is the lowest scenario ID of the chunk. Scenario IDs are
	// disjoint across completed chunks, so (Cluster, Scenarios,
	// FirstScenario) is a total order — the tiebreak that keeps report
	// ordering deterministic when the same cluster serves equal-sized chunks
	// in two rounds.
	FirstScenario int
}

// CampaignMakespan folds chunk reports into a campaign's completion time:
// repartition rounds run sequentially (a requeued round starts only after
// the previous round's chunks resolved), so the makespan is the sum of
// per-round chunk maxima — not the global max over all reports, which
// undercounts every campaign that survived a failure. Summation runs in
// ascending round order: float addition is not associative, and every
// accounting site (scheduler, verifier, local runner) must agree bit for
// bit, which is why this is the one shared implementation.
func CampaignMakespan(reports []ExecResponse) float64 {
	maxByRound := make(map[int]float64)
	maxRound := 0
	for _, r := range reports {
		if r.Makespan > maxByRound[r.Round] {
			maxByRound[r.Round] = r.Makespan
		}
		if r.Round > maxRound {
			maxRound = r.Round
		}
	}
	total := 0.0
	for round := 0; round <= maxRound; round++ {
		total += maxByRound[round]
	}
	return total
}

// HeartbeatRequest is a SeD's liveness beacon to the scheduler. It carries
// the full registration payload so a beat from an unknown — or evicted —
// daemon re-registers it: a SeD that rejoins after a network blip needs no
// separate recovery protocol.
type HeartbeatRequest struct {
	Cluster  string
	Addr     string
	Procs    int
	InFlight int
	// Speed is the daemon's relative speed factor (protocol v7): 1.0 is the
	// reference, 0.5 means the SeD runs everything twice as slowly and its
	// advertised performance vectors are scaled accordingly, so the
	// repartition hands it proportionally smaller chunks. 0 — every pre-v7
	// beat — reads as 1.0.
	Speed float64
	// Draining marks a daemon that has stopped accepting new placements
	// (protocol v7): the scheduler keeps the entry (its in-flight chunks
	// must finish and bank) but excludes it from new dispatches, so a
	// graceful scale-down never requeues a chunk.
	Draining bool
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct{ OK bool }

// SubmitRequest asks the scheduler to run one simulation campaign: a full
// Figure-9 protocol round (performance vectors, repartition, execution)
// served from the daemon's online queue.
type SubmitRequest struct {
	Scenarios int
	Months    int
	Heuristic string
	// Wait keeps the connection open: the scheduler streams the admission
	// verdict immediately and the campaign result when it completes.
	Wait bool
	// Progress asks for per-campaign progress frames between the verdict and
	// the result. Honored only on Wait connections at protocol v2 or later;
	// a v1 server ignores the field entirely.
	Progress bool
	// Priority orders the admission queue (protocol v3): higher-priority
	// campaigns dispatch first, ties run in admission order. Pre-v3 servers
	// ignore the field (everything is priority 0, plain FIFO).
	Priority int
	// Labels are the campaign's operator-facing tags, matched as a subset by
	// KindListCampaigns filters (protocol v3). Pre-v3 servers drop them.
	Labels map[string]string
	// Deadline overrides the scheduler's per-campaign timeout for this one
	// campaign (protocol v3; 0 keeps the daemon default). Pre-v3 servers
	// ignore it.
	Deadline time.Duration
}

// SubmitResponse is the admission verdict. Accepted=false means the bounded
// queue was full; the client may retry later.
type SubmitResponse struct {
	ID         uint64
	Accepted   bool
	Reason     string
	QueueDepth int
	// Code classifies a rejection (Accepted=false) so clients can branch
	// without string-matching Reason: RejectQueueFull means the daemon-wide
	// queue bound was hit, RejectQuota means the submitting tenant's own
	// admission quota was. Both are transient verdicts worth retrying; the
	// quota code tells a multi-tenant client that backing off will not help
	// until its own earlier campaigns drain. Empty on acceptance, from
	// pre-v5 daemons, and on binary connections negotiated below v5 (treat
	// a codeless rejection as queue-full).
	Code string
}

// Rejection codes carried by SubmitResponse.Code.
const (
	RejectQueueFull = "queue-full"
	RejectQuota     = "quota-exceeded"
)

// ResultRequest polls a campaign by ID.
type ResultRequest struct{ ID uint64 }

// AttachRequest reconnects to a campaign by ID — after a network cut, a
// client restart, or a scheduler restart that replayed its journal. The
// connection streams exactly like a submit-wait connection, except the
// verdict frame is an AttachResponse and the progress stream starts with the
// campaign's full replayed history.
type AttachRequest struct {
	ID uint64
	// Progress asks for progress frames (replayed history plus live updates)
	// between the verdict and the result. Honored at protocol v2 or later.
	Progress bool
}

// AttachResponse is the attach verdict. Found=false means the scheduler does
// not know the campaign — it was never admitted, or was pruned past the
// retention cap; resubmit instead of retrying.
type AttachResponse struct {
	ID     uint64
	Found  bool
	Status string
	Done   int
	Total  int
}

// Campaign states reported by CampaignResult.Status.
const (
	CampaignQueued  = "queued"
	CampaignRunning = "running"
	CampaignDone    = "done"
	CampaignFailed  = "failed"
	// CampaignCancelled is the terminal state of a campaign aborted by
	// KindCancel (protocol v3): admission-queue removal or cooperative abort
	// of in-flight work, journaled terminally — a cancelled campaign is
	// never re-admitted by a journal replay.
	CampaignCancelled = "cancelled"
)

// CancelRequest aborts a campaign by ID (protocol v3). A queued campaign is
// removed before it ever dispatches; a running campaign stops at the next
// chunk boundary — in-flight SeD exchanges are abandoned and their reports
// discarded, so no chunk frame follows the cancel verdict.
type CancelRequest struct{ ID uint64 }

// CancelResponse is the cancel verdict. Found=false means the scheduler does
// not know the campaign. Status is the campaign's state after the verdict:
// "cancelled" when this request (or an earlier one) cancelled it, or the
// terminal state ("done"/"failed") that beat the cancel to the finish line —
// cancelling a finished campaign is a no-op, not an error.
type CancelResponse struct {
	ID     uint64
	Found  bool
	Status string
}

// InfoRequest fetches one campaign's control-plane snapshot (protocol v3).
type InfoRequest struct{ ID uint64 }

// CampaignInfo is the control-plane view of one campaign: the submit options
// it carried plus its live progress gauges — what an operator enumerating a
// multi-tenant scheduler sees, as opposed to the CampaignResult a waiting
// submitter streams.
type CampaignInfo struct {
	ID uint64
	// Found is false when the scheduler does not know the campaign (KindInfo
	// on an unknown or pruned ID); every other field is then zero.
	Found     bool
	Status    string
	Priority  int
	Labels    map[string]string
	Heuristic string
	Scenarios int
	Months    int
	// Done counts scenarios with a finished chunk report; Total mirrors
	// Scenarios so clients can render progress without the shape.
	Done  int
	Total int
	// Rounds counts repartition rounds started; Requeues counts chunks lost
	// to dead SeDs and re-repartitioned.
	Rounds   int
	Requeues int
	// Makespan is set once the campaign is done.
	Makespan float64
	Err      string
	// Tenant is the fair-queueing tenant the campaign was admitted under
	// (the value of the scheduler's tenant label key, "default" when the
	// campaign carries none).
	Tenant string
	// QueuePos is the campaign's 1-based dispatch position within its
	// tenant's queue — the number of campaigns of the same tenant that will
	// dispatch at or before it. 0 once the campaign left the queue.
	QueuePos int
	// WaitMs is the campaign's admission-to-dispatch wait: still ticking
	// while queued, frozen at the dispatch point after.
	WaitMs float64
}

// ListCampaignsRequest enumerates the scheduler's campaign table (protocol
// v3). Status, when non-empty, keeps only campaigns in that state; Labels,
// when non-empty, keeps only campaigns whose label set contains every given
// pair (subset match).
type ListCampaignsRequest struct {
	Status string
	Labels map[string]string
}

// ListCampaignsResponse carries the matching campaigns in ascending ID
// (admission) order.
type ListCampaignsResponse struct {
	Campaigns []CampaignInfo
}

// LabelsMatch reports whether got contains every pair of want (subset
// match); an empty want matches everything. It is the one label-filter
// semantic of the control plane, shared by the scheduler and the local
// runner so List behaves identically on both.
func LabelsMatch(got, want map[string]string) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// CampaignResult is the terminal (or in-flight, when polled) state of one
// campaign. Reports carries one ExecResponse per dispatched chunk; a cluster
// appears more than once when work was requeued onto it after a failure.
type CampaignResult struct {
	ID       uint64
	Status   string
	Makespan float64
	Reports  []ExecResponse
	// Requeues counts chunks that had to be re-dispatched after a SeD died.
	Requeues int
	// Done and Total count scenarios with a finished chunk report, so a
	// polling client (Submit without Wait, then Result) sees progress before
	// the terminal state, not just "running".
	Done  int
	Total int
	Err   string
}

// Progress stages reported by ProgressUpdate.Stage.
const (
	// StagePlanned: the repartition is computed; Planned lists each cluster's
	// scenario share for this attempt.
	StagePlanned = "planned"
	// StageChunk: one cluster finished its share; Chunk carries its report.
	StageChunk = "chunk"
	// StageRequeue: a cluster died mid-chunk and its scenarios went back on
	// the campaign's plate for re-repartition.
	StageRequeue = "requeue"
)

// PlannedChunk is one cluster's share of a repartition attempt.
type PlannedChunk struct {
	Cluster   string
	Scenarios int
}

// ProgressUpdate is one v2 progress frame: a campaign's state transition.
// Done/Total count scenarios with a finished chunk report, so clients can
// render completion without understanding the stages.
type ProgressUpdate struct {
	ID    uint64
	Stage string
	// Planned is set on StagePlanned frames.
	Planned []PlannedChunk
	// Chunk is set on StageChunk frames.
	Chunk *ExecResponse
	// Requeued is set on StageRequeue frames: the scenario count sent back
	// for re-repartition.
	Requeued int
	Done     int
	Total    int
}

// StatsRequest asks the scheduler for its gauges.
type StatsRequest struct{}

// SeDStatus is one entry of the scheduler's daemon table.
type SeDStatus struct {
	Cluster string
	Addr    string
	Procs   int
	Alive   bool
	// InFlight is the load the daemon itself reported on its last
	// heartbeat — it includes requests from legacy direct clients the
	// scheduler never sees.
	InFlight int
	// Outstanding is the scheduler's own view: perf/exec requests it
	// currently holds open against the daemon (bounded by the per-SeD
	// in-flight limit).
	Outstanding int
	// SinceBeat is the age of the last heartbeat.
	SinceBeat time.Duration
	// Speed is the daemon's advertised relative speed factor (1.0 for every
	// pre-v7 daemon).
	Speed float64
	// Draining is true while the daemon is gracefully leaving the fleet:
	// excluded from new dispatches, finishing what it holds.
	Draining bool
	// Leases counts repartition rounds that snapshotted this daemon into
	// their dispatch pool and have not finished processing results yet. A
	// draining daemon with zero leases and zero outstanding requests is
	// safe to deregister.
	Leases int
}

// TenantStatus is one tenant's slice of the scheduler's weighted-fair
// queueing state: its configured weight, live gauges, and service counters.
// Queue-wait moments (sum/max/count over admission-to-dispatch waits) are
// the fairness signal — under WFQ they should track 1/weight.
type TenantStatus struct {
	Tenant string
	Weight float64
	Queued int
	// Running counts the tenant's campaigns currently held by a dispatcher.
	Running       int
	Admitted      uint64
	Completed     uint64
	Failed        uint64
	Cancelled     uint64
	QuotaRejected uint64
	// WaitCount / WaitSumMs / WaitMaxMs summarize admission-to-dispatch
	// queue waits of the tenant's dispatched campaigns.
	WaitCount uint64
	WaitSumMs float64
	WaitMaxMs float64
}

// StatsResponse is the scheduler's state snapshot.
type StatsResponse struct {
	QueueDepth    int
	MaxQueueDepth int
	Running       int
	Completed     uint64
	Failed        uint64
	// Cancelled counts campaigns terminated by KindCancel (protocol v3).
	Cancelled uint64
	Rejected  uint64
	Requeues  uint64
	Evicted   uint64
	SeDs      []SeDStatus
	// Tenants is the per-tenant weighted-fair-queueing breakdown, sorted by
	// tenant name. Empty from pre-WFQ daemons.
	Tenants []TenantStatus
	// OldestWaitMs is the longest admission-to-now wait among campaigns
	// still queued — the deadline-pressure signal an autoscaler samples. 0
	// with an empty queue (and from pre-v7 daemons).
	OldestWaitMs float64
}

// RemoteError is an answered request whose response carried an Err payload:
// the peer was reachable and spoke the protocol, it just refused or failed
// the operation. Ring-aware clients use the distinction to stop rotating
// through members — an authoritative refusal from one shard will not get
// better at the next — while plain transport failures stay retryable.
type RemoteError struct {
	// Kind is the request kind the error answers.
	Kind string
	// Msg is the remote's error text, verbatim.
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("diet: %s: remote error: %s", e.Kind, e.Msg)
}

// dialTimeout bounds every protocol round trip.
const dialTimeout = 5 * time.Second

// roundTrip dials addr, sends req and decodes the response, announcing this
// build's protocol version when the caller left it unset — in-package
// callers (SeD heartbeats, the Figure-9 client) always speak the newest
// dialect they can.
func roundTrip(addr string, req *Request) (*Response, error) {
	if req.Version == 0 {
		req.Version = ProtocolVersion
	}
	return RoundTripTimeout(addr, req, dialTimeout)
}

// RoundTrip dials addr, sends req and decodes the single response, with the
// protocol's default deadline. It is the one-shot client primitive the
// scheduler layer (internal/grid) builds on.
func RoundTrip(addr string, req *Request) (*Response, error) {
	return roundTrip(addr, req)
}

// RoundTripTimeout is RoundTrip with an explicit deadline for the whole
// exchange. Long-poll exchanges (Submit with Wait) need deadlines sized to
// the campaign, not to the transport.
func RoundTripTimeout(addr string, req *Request, d time.Duration) (*Response, error) {
	return RoundTripContext(context.Background(), addr, req, d)
}

// RoundTripContext is RoundTripTimeout under a context: cancelling ctx
// aborts the dial and unblocks an in-flight read or write immediately.
// The exchange uses binary framing when the peer is known to speak v4
// (see UseBinary) and the legacy codec otherwise; either way a successful
// response updates the peer-version cache.
func RoundTripContext(ctx context.Context, addr string, req *Request, d time.Duration) (*Response, error) {
	if UseBinary(addr, req.Version) {
		return roundTripBinary(ctx, addr, req, d)
	}
	dialer := net.Dialer{Timeout: d}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("diet: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	stop := AbortOnDone(ctx, conn)
	defer stop()
	if err := conn.SetDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	cc := CountConn(conn)
	if err := gob.NewEncoder(cc).Encode(req); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("diet: encoding %s request to %s: %w", req.Kind, addr, err)
	}
	wireTxFrames.Add(1)
	var resp Response
	if err := gob.NewDecoder(cc).Decode(&resp); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("diet: decoding %s response from %s: %w", req.Kind, addr, err)
	}
	wireRxFrames.Add(1)
	RecordPeerVersion(addr, resp.Version)
	if resp.Err != "" {
		return nil, &RemoteError{Kind: req.Kind, Msg: resp.Err}
	}
	return &resp, nil
}

// AbortOnDone ties a connection to a context: when ctx is cancelled the
// connection's deadline is forced into the past, which unblocks any reader
// or writer parked on it with a timeout error. The past deadline is
// re-asserted until stop is called, so a caller that refreshes the deadline
// concurrently with the cancellation (a per-frame refresh racing the abort)
// still aborts within milliseconds instead of re-arming the connection. The
// returned stop function releases the watcher; callers must invoke it
// before closing the connection.
func AbortOnDone(ctx context.Context, conn net.Conn) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	quit := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-quit:
			return
		}
		for {
			_ = conn.SetDeadline(time.Unix(1, 0))
			select {
			case <-quit:
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
	}()
	return func() { close(quit) }
}

// serveConn handles one connection with the given dispatcher. The codec is
// sniffed from the connection's first bytes: the v4 frame magic selects
// binary framing, anything else falls through to the legacy gob decoder.
func serveConn(conn net.Conn, handle func(*Request) *Response) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))
	cc := CountConn(conn)
	br := bufio.NewReader(cc)
	peek, err := br.Peek(4)
	if err != nil {
		return
	}
	if IsBinaryMagic(peek) {
		if LegacyCodecForced() {
			return // binary disabled: drop, peer self-heals via version cache
		}
		serveBinaryConn(conn, br, cc, handle)
		return
	}
	var req Request
	if err := gob.NewDecoder(br).Decode(&req); err != nil {
		return // malformed request: drop silently, client times out
	}
	wireRxFrames.Add(1)
	resp := handle(&req)
	// Stamp the negotiated version so clients learn this peer's capability
	// even from handlers that leave the envelope's version zero.
	if resp.Version == 0 {
		resp.Version = NegotiateVersion(req.Version)
	}
	// The handler may have burned wall clock on a loaded box (perf vectors,
	// executor runs); give the write its own fresh deadline.
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))
	if gob.NewEncoder(cc).Encode(resp) == nil {
		wireTxFrames.Add(1)
	}
}

// acceptLoop serves until the listener closes.
func acceptLoop(ln net.Listener, handle func(*Request) *Response) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, handle)
	}
}

// Serve exposes the accept loop to sibling packages that reuse the diet
// transport for their own agents (the grid scheduler streams on some
// connections and therefore brings its own connection handler; plain
// request/response agents can use this).
func Serve(ln net.Listener, handle func(*Request) *Response) {
	acceptLoop(ln, handle)
}
