// Package diet is a loopback reimplementation of the grid middleware layer
// the paper deploys on (DIET): a master agent where per-cluster server
// daemons (SeDs) register, and a client that runs the six-step protocol of
// the paper's Figure 9 —
//
//	(1) the client sends the request (NS, NM) to the clusters;
//	(2) each cluster computes its performance vector with the knapsack model;
//	(3) the vectors return to the client;
//	(4) the client computes the scenario repartition (Algorithm 1);
//	(5) the client sends each cluster its share of the simulations;
//	(6) each cluster executes its share.
//
// Transport is gob over TCP. The original study ran this over Grid'5000;
// here the "clusters" are simulated executors on loopback sockets, which
// preserves every protocol step and message shape.
package diet

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"oagrid/internal/core"
)

// Message kinds.
const (
	KindRegister = "register"
	KindList     = "list"
	KindPerf     = "perf"
	KindExec     = "exec"
)

// Request is the envelope every connection carries exactly one of.
type Request struct {
	Kind     string
	Register *RegisterRequest
	List     *ListRequest
	Perf     *PerfRequest
	Exec     *ExecRequest
}

// Response is the reply envelope.
type Response struct {
	Err      string
	Register *RegisterResponse
	List     *ListResponse
	Perf     *PerfResponse
	Exec     *ExecResponse
}

// RegisterRequest is a SeD announcing itself to the master agent.
type RegisterRequest struct {
	Cluster string
	Addr    string
	Procs   int
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct{ Accepted bool }

// ListRequest asks the master agent for the registered SeDs.
type ListRequest struct{}

// SeDInfo describes one registered server daemon.
type SeDInfo struct {
	Cluster string
	Addr    string
	Procs   int
}

// ListResponse carries the SeD directory.
type ListResponse struct{ SeDs []SeDInfo }

// PerfRequest is protocol step (1): the experiment parameters.
type PerfRequest struct {
	Scenarios int
	Months    int
	Heuristic string
}

// PerfResponse is step (3): the cluster's performance vector — entry k−1 is
// the makespan of k scenarios on this cluster.
type PerfResponse struct {
	Cluster string
	Procs   int
	Vector  []float64
}

// ExecRequest is step (5): the scenarios assigned to this cluster.
type ExecRequest struct {
	ScenarioIDs []int
	Months      int
	Heuristic   string
}

// ExecResponse is step (6): the execution report.
type ExecResponse struct {
	Cluster    string
	Makespan   float64
	Allocation core.Allocation
	Scenarios  int
}

// dialTimeout bounds every protocol round trip.
const dialTimeout = 5 * time.Second

// roundTrip dials addr, sends req and decodes the response.
func roundTrip(addr string, req *Request) (*Response, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("diet: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(dialTimeout)); err != nil {
		return nil, err
	}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("diet: encoding %s request to %s: %w", req.Kind, addr, err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("diet: decoding %s response from %s: %w", req.Kind, addr, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("diet: %s: remote error: %s", req.Kind, resp.Err)
	}
	return &resp, nil
}

// serveConn handles one connection with the given dispatcher.
func serveConn(conn net.Conn, handle func(*Request) *Response) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))
	var req Request
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return // malformed request: drop silently, client times out
	}
	resp := handle(&req)
	_ = gob.NewEncoder(conn).Encode(resp)
}

// acceptLoop serves until the listener closes.
func acceptLoop(ln net.Listener, handle func(*Request) *Response) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, handle)
	}
}
