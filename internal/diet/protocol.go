// Package diet is a loopback reimplementation of the grid middleware layer
// the paper deploys on (DIET): a master agent where per-cluster server
// daemons (SeDs) register, and a client that runs the six-step protocol of
// the paper's Figure 9 —
//
//	(1) the client sends the request (NS, NM) to the clusters;
//	(2) each cluster computes its performance vector with the knapsack model;
//	(3) the vectors return to the client;
//	(4) the client computes the scenario repartition (Algorithm 1);
//	(5) the client sends each cluster its share of the simulations;
//	(6) each cluster executes its share.
//
// Transport is gob over TCP. The original study ran this over Grid'5000;
// here the "clusters" are simulated executors on loopback sockets, which
// preserves every protocol step and message shape.
package diet

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"

	"oagrid/internal/core"
)

// Message kinds.
const (
	KindRegister = "register"
	KindList     = "list"
	KindPerf     = "perf"
	KindExec     = "exec"

	// Online-scheduler kinds (served by internal/grid.Scheduler).
	KindHeartbeat = "heartbeat"
	KindSubmit    = "submit"
	KindResult    = "result"
	KindStats     = "stats"
)

// Request is the envelope every connection carries exactly one of.
type Request struct {
	Kind      string
	Register  *RegisterRequest
	List      *ListRequest
	Perf      *PerfRequest
	Exec      *ExecRequest
	Heartbeat *HeartbeatRequest
	Submit    *SubmitRequest
	Result    *ResultRequest
	Stats     *StatsRequest
}

// Response is the reply envelope. A Submit connection with Wait set is the
// one place the protocol streams: the scheduler writes a Submit frame
// (admission verdict) and, once the campaign finishes, a Result frame on the
// same connection.
type Response struct {
	Err       string
	Register  *RegisterResponse
	List      *ListResponse
	Perf      *PerfResponse
	Exec      *ExecResponse
	Heartbeat *HeartbeatResponse
	Submit    *SubmitResponse
	Result    *CampaignResult
	Stats     *StatsResponse
}

// RegisterRequest is a SeD announcing itself to the master agent.
type RegisterRequest struct {
	Cluster string
	Addr    string
	Procs   int
}

// RegisterResponse acknowledges a registration.
type RegisterResponse struct{ Accepted bool }

// ListRequest asks the master agent for the registered SeDs.
type ListRequest struct{}

// SeDInfo describes one registered server daemon.
type SeDInfo struct {
	Cluster string
	Addr    string
	Procs   int
}

// ListResponse carries the SeD directory.
type ListResponse struct{ SeDs []SeDInfo }

// PerfRequest is protocol step (1): the experiment parameters.
type PerfRequest struct {
	Scenarios int
	Months    int
	Heuristic string
}

// PerfResponse is step (3): the cluster's performance vector — entry k−1 is
// the makespan of k scenarios on this cluster.
type PerfResponse struct {
	Cluster string
	Procs   int
	Vector  []float64
}

// ExecRequest is step (5): the scenarios assigned to this cluster.
type ExecRequest struct {
	ScenarioIDs []int
	Months      int
	Heuristic   string
}

// ExecResponse is step (6): the execution report.
type ExecResponse struct {
	Cluster    string
	Makespan   float64
	Allocation core.Allocation
	Scenarios  int
}

// HeartbeatRequest is a SeD's liveness beacon to the scheduler. It carries
// the full registration payload so a beat from an unknown — or evicted —
// daemon re-registers it: a SeD that rejoins after a network blip needs no
// separate recovery protocol.
type HeartbeatRequest struct {
	Cluster  string
	Addr     string
	Procs    int
	InFlight int
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct{ OK bool }

// SubmitRequest asks the scheduler to run one simulation campaign: a full
// Figure-9 protocol round (performance vectors, repartition, execution)
// served from the daemon's online queue.
type SubmitRequest struct {
	Scenarios int
	Months    int
	Heuristic string
	// Wait keeps the connection open: the scheduler streams the admission
	// verdict immediately and the campaign result when it completes.
	Wait bool
}

// SubmitResponse is the admission verdict. Accepted=false means the bounded
// queue was full; the client may retry later.
type SubmitResponse struct {
	ID         uint64
	Accepted   bool
	Reason     string
	QueueDepth int
}

// ResultRequest polls a campaign by ID.
type ResultRequest struct{ ID uint64 }

// Campaign states reported by CampaignResult.Status.
const (
	CampaignQueued  = "queued"
	CampaignRunning = "running"
	CampaignDone    = "done"
	CampaignFailed  = "failed"
)

// CampaignResult is the terminal (or in-flight, when polled) state of one
// campaign. Reports carries one ExecResponse per dispatched chunk; a cluster
// appears more than once when work was requeued onto it after a failure.
type CampaignResult struct {
	ID       uint64
	Status   string
	Makespan float64
	Reports  []ExecResponse
	// Requeues counts chunks that had to be re-dispatched after a SeD died.
	Requeues int
	Err      string
}

// StatsRequest asks the scheduler for its gauges.
type StatsRequest struct{}

// SeDStatus is one entry of the scheduler's daemon table.
type SeDStatus struct {
	Cluster string
	Addr    string
	Procs   int
	Alive   bool
	// InFlight is the load the daemon itself reported on its last
	// heartbeat — it includes requests from legacy direct clients the
	// scheduler never sees.
	InFlight int
	// Outstanding is the scheduler's own view: perf/exec requests it
	// currently holds open against the daemon (bounded by the per-SeD
	// in-flight limit).
	Outstanding int
	// SinceBeat is the age of the last heartbeat.
	SinceBeat time.Duration
}

// StatsResponse is the scheduler's state snapshot.
type StatsResponse struct {
	QueueDepth    int
	MaxQueueDepth int
	Running       int
	Completed     uint64
	Failed        uint64
	Rejected      uint64
	Requeues      uint64
	Evicted       uint64
	SeDs          []SeDStatus
}

// dialTimeout bounds every protocol round trip.
const dialTimeout = 5 * time.Second

// roundTrip dials addr, sends req and decodes the response.
func roundTrip(addr string, req *Request) (*Response, error) {
	return RoundTripTimeout(addr, req, dialTimeout)
}

// RoundTrip dials addr, sends req and decodes the single response, with the
// protocol's default deadline. It is the one-shot client primitive the
// scheduler layer (internal/grid) builds on.
func RoundTrip(addr string, req *Request) (*Response, error) {
	return roundTrip(addr, req)
}

// RoundTripTimeout is RoundTrip with an explicit deadline for the whole
// exchange. Long-poll exchanges (Submit with Wait) need deadlines sized to
// the campaign, not to the transport.
func RoundTripTimeout(addr string, req *Request, d time.Duration) (*Response, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, fmt.Errorf("diet: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(d)); err != nil {
		return nil, err
	}
	if err := gob.NewEncoder(conn).Encode(req); err != nil {
		return nil, fmt.Errorf("diet: encoding %s request to %s: %w", req.Kind, addr, err)
	}
	var resp Response
	if err := gob.NewDecoder(conn).Decode(&resp); err != nil {
		return nil, fmt.Errorf("diet: decoding %s response from %s: %w", req.Kind, addr, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("diet: %s: remote error: %s", req.Kind, resp.Err)
	}
	return &resp, nil
}

// serveConn handles one connection with the given dispatcher.
func serveConn(conn net.Conn, handle func(*Request) *Response) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))
	var req Request
	if err := gob.NewDecoder(conn).Decode(&req); err != nil {
		return // malformed request: drop silently, client times out
	}
	resp := handle(&req)
	// The handler may have burned wall clock on a loaded box (perf vectors,
	// executor runs); give the write its own fresh deadline.
	_ = conn.SetDeadline(time.Now().Add(dialTimeout))
	_ = gob.NewEncoder(conn).Encode(resp)
}

// acceptLoop serves until the listener closes.
func acceptLoop(ln net.Listener, handle func(*Request) *Response) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go serveConn(conn, handle)
	}
}

// Serve exposes the accept loop to sibling packages that reuse the diet
// transport for their own agents (the grid scheduler streams on some
// connections and therefore brings its own connection handler; plain
// request/response agents can use this).
func Serve(ln net.Listener, handle func(*Request) *Response) {
	acceptLoop(ln, handle)
}
