package diet

import (
	"math"
	"strings"
	"sync"
	"testing"

	"oagrid/internal/core"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

// startGrid boots a master agent plus one SeD per given cluster, all on
// loopback ephemeral ports, and registers the SeDs.
func startGrid(t *testing.T, clusters []*platform.Cluster) *MasterAgent {
	t.Helper()
	ma, err := StartMasterAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ma.Close() })
	for _, cl := range clusters {
		sed, err := StartSeD("127.0.0.1:0", cl, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sed.Close() })
		if err := sed.RegisterWith(ma.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	return ma
}

func smallClusters() []*platform.Cluster {
	profiles := platform.FiveClusters()[:3]
	for _, c := range profiles {
		c.Procs = 30
	}
	return profiles
}

func TestRegistration(t *testing.T) {
	ma := startGrid(t, smallClusters())
	seds := ma.SeDs()
	if len(seds) != 3 {
		t.Fatalf("registered %d SeDs, want 3", len(seds))
	}
	names := map[string]bool{}
	for _, s := range seds {
		names[s.Cluster] = true
		if s.Addr == "" || s.Procs != 30 {
			t.Fatalf("bad SeD info %+v", s)
		}
	}
	if !names["sagittaire"] || !names["capricorne"] || !names["chicon"] {
		t.Fatalf("unexpected cluster set %v", names)
	}
}

func TestReRegistrationReplaces(t *testing.T) {
	clusters := smallClusters()[:1]
	ma := startGrid(t, clusters)
	// A second daemon for the same cluster replaces the entry.
	sed, err := StartSeD("127.0.0.1:0", clusters[0], exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sed.Close()
	if err := sed.RegisterWith(ma.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := len(ma.SeDs()); got != 1 {
		t.Fatalf("%d entries after re-registration, want 1", got)
	}
	if ma.SeDs()[0].Addr != sed.Addr() {
		t.Fatal("re-registration did not update the address")
	}
}

// TestSubmitMatchesDirectComputation: the distributed protocol must land on
// exactly the repartition and makespan a direct in-process computation gives.
func TestSubmitMatchesDirectComputation(t *testing.T) {
	clusters := smallClusters()
	ma := startGrid(t, clusters)
	app := core.Application{Scenarios: 6, Months: 24}

	client := &Client{MAAddr: ma.Addr()}
	res, err := client.Submit(app, core.NameKnapsack)
	if err != nil {
		t.Fatal(err)
	}

	// Direct computation with the same evaluator.
	ev := exec.Evaluator(exec.Options{})
	perf := make([][]float64, len(clusters))
	for i, cl := range clusters {
		vec, err := core.PerformanceVector(app, cl.Timing, cl.Procs, core.Knapsack{}, ev)
		if err != nil {
			t.Fatal(err)
		}
		perf[i] = vec
	}
	// The SeD order at the MA matches registration order.
	want, err := core.Repartition(perf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-want.Makespan) > 1e-6*want.Makespan {
		t.Fatalf("protocol makespan %g != direct %g", res.Makespan, want.Makespan)
	}
	total := 0
	for i, c := range res.Repartition.Counts {
		if c != want.Counts[i] {
			t.Fatalf("repartition counts %v != direct %v", res.Repartition.Counts, want.Counts)
		}
		total += c
	}
	if total != app.Scenarios {
		t.Fatalf("assigned %d scenarios, want %d", total, app.Scenarios)
	}
	// The slowest executing cluster defines the global makespan.
	maxReport := 0.0
	for _, r := range res.Reports {
		if r.Makespan > maxReport {
			maxReport = r.Makespan
		}
	}
	if maxReport != res.Makespan {
		t.Fatalf("makespan %g not the max report %g", res.Makespan, maxReport)
	}
}

func TestSubmitVectorsComplete(t *testing.T) {
	ma := startGrid(t, smallClusters())
	app := core.Application{Scenarios: 4, Months: 12}
	res, err := (&Client{MAAddr: ma.Addr()}).Submit(app, core.NameBasic)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vectors) != 3 {
		t.Fatalf("got %d vectors, want 3", len(res.Vectors))
	}
	for name, vec := range res.Vectors {
		if len(vec) != app.Scenarios {
			t.Fatalf("cluster %s vector has %d entries, want %d", name, len(vec), app.Scenarios)
		}
		for k := 1; k < len(vec); k++ {
			if vec[k] < vec[k-1]-1e-9 {
				t.Fatalf("cluster %s vector not monotone: %v", name, vec)
			}
		}
	}
}

func TestSubmitErrors(t *testing.T) {
	ma, err := StartMasterAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	client := &Client{MAAddr: ma.Addr()}
	if _, err := client.Submit(core.Application{Scenarios: 2, Months: 2}, core.NameBasic); err == nil {
		t.Fatal("submit succeeded with no SeD registered")
	}
	if _, err := client.Submit(core.Application{}, core.NameBasic); err == nil {
		t.Fatal("invalid application accepted")
	}
	if _, err := (&Client{MAAddr: "127.0.0.1:1"}).Submit(core.Application{Scenarios: 1, Months: 1}, core.NameBasic); err == nil {
		t.Fatal("dead master agent address accepted")
	}
}

func TestUnknownHeuristicRejectedRemotely(t *testing.T) {
	ma := startGrid(t, smallClusters()[:1])
	_, err := (&Client{MAAddr: ma.Addr()}).Submit(core.Application{Scenarios: 2, Months: 4}, "nope")
	if err == nil || !strings.Contains(err.Error(), "unknown heuristic") {
		t.Fatalf("unknown heuristic not rejected: %v", err)
	}
}

// TestConcurrentRegistrationAndListing hammers the registry from many
// goroutines while readers iterate the SeD table. SeDs() must hand out a
// copy taken under the mutex: under `go test -race` this test fails if the
// registry ever leaks its internal slice to a reader.
func TestConcurrentRegistrationAndListing(t *testing.T) {
	ma, err := StartMasterAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()

	clusters := platform.FiveClusters()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				for _, cl := range clusters {
					_, err := roundTrip(ma.Addr(), &Request{Kind: KindRegister, Register: &RegisterRequest{
						Cluster: cl.Name,
						Addr:    "127.0.0.1:1",
						Procs:   10 + i + round,
					}})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				for _, info := range ma.SeDs() {
					if info.Cluster == "" || info.Procs < 10 {
						t.Errorf("torn SeD entry %+v", info)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := len(ma.SeDs()); got != len(clusters) {
		t.Fatalf("registry holds %d entries after churn, want %d", got, len(clusters))
	}
}

func TestSeDRejectsUnsupportedKind(t *testing.T) {
	cl := smallClusters()[0]
	sed, err := StartSeD("127.0.0.1:0", cl, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sed.Close()
	if _, err := roundTrip(sed.Addr(), &Request{Kind: KindList, List: &ListRequest{}}); err == nil {
		t.Fatal("SeD answered a master-agent request")
	}
}

func TestMasterAgentRejectsPerf(t *testing.T) {
	ma, err := StartMasterAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ma.Close()
	if _, err := roundTrip(ma.Addr(), &Request{Kind: KindPerf, Perf: &PerfRequest{Scenarios: 1, Months: 1, Heuristic: core.NameBasic}}); err == nil {
		t.Fatal("master agent answered a SeD request")
	}
}
