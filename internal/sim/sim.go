// Package sim is a minimal deterministic discrete-event simulation kernel.
//
// The executor (internal/exec) and the middleware tests replay schedules in
// virtual time rather than wall-clock time, which is how the paper's own
// evaluation works ("simulations" in its sections 4.3 and 6). The kernel is a
// classic event heap with a strict total order: events fire in (time, FIFO
// sequence) order, so two runs of the same scenario are bit-for-bit
// reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is virtual simulation time in seconds.
type Time = float64

// Handler is the body of an event. It runs when the simulation clock reaches
// the event's timestamp and may schedule further events.
type Handler func(now Time)

type event struct {
	at   Time
	seq  uint64
	fn   Handler
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// ErrPastEvent is returned when an event is scheduled before the current
// simulation time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Event is a cancellable handle returned by Schedule.
type Event struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e Event) Cancel() {
	if e.ev != nil {
		e.ev.dead = true
	}
}

// Simulator owns the virtual clock and the pending event set. The zero value
// is ready to use and starts at time 0.
type Simulator struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// New returns a simulator starting at time 0.
func New() *Simulator { return &Simulator{} }

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired reports how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports how many events are scheduled and not yet cancelled.
func (s *Simulator) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute time at. It returns a cancellable handle
// and an error if at precedes the current clock.
func (s *Simulator) At(at Time, fn Handler) (Event, error) {
	if at < s.now {
		return Event{}, fmt.Errorf("%w: at=%g now=%g", ErrPastEvent, at, s.now)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return Event{}, fmt.Errorf("sim: invalid event time %g", at)
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, ev)
	return Event{ev}, nil
}

// After schedules fn to run delay seconds from now.
func (s *Simulator) After(delay Time, fn Handler) (Event, error) {
	return s.At(s.now+delay, fn)
}

// Step fires the next pending event, if any, and reports whether one fired.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn(s.now)
		return true
	}
	return false
}

// Run fires events until none remain and returns the final clock value.
func (s *Simulator) Run() Time {
	for s.Step() {
	}
	return s.now
}

// RunUntil fires events with timestamps <= deadline, advances the clock to
// deadline, and returns the number of events fired.
func (s *Simulator) RunUntil(deadline Time) uint64 {
	start := s.fired
	for len(s.events) > 0 {
		// Peek the heap head without popping dead events prematurely.
		head := s.events[0]
		if head.dead {
			heap.Pop(&s.events)
			continue
		}
		if head.at > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
	return s.fired - start
}
