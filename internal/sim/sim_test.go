package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRunFiresInTimeOrder(t *testing.T) {
	s := New()
	var got []Time
	for _, at := range []Time{5, 1, 3, 2, 4} {
		if _, err := s.At(at, func(now Time) { got = append(got, now) }); err != nil {
			t.Fatal(err)
		}
	}
	end := s.Run()
	if end != 5 {
		t.Fatalf("final clock %g, want 5", end)
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("fired %d events, want 5", len(got))
	}
}

func TestFIFOAtSameTimestamp(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(7, func(Time) { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestPastEventRejected(t *testing.T) {
	s := New()
	if _, err := s.At(3, func(Time) {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, err := s.At(1, func(Time) {}); err == nil {
		t.Fatal("expected ErrPastEvent")
	}
	if _, err := s.At(math.NaN(), func(Time) {}); err == nil {
		t.Fatal("expected error for NaN time")
	}
	if _, err := s.At(math.Inf(1), func(Time) {}); err == nil {
		t.Fatal("expected error for infinite time")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev, err := s.At(1, func(Time) { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	ev.Cancel()
	ev.Cancel() // idempotent
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.Fired() != 0 {
		t.Fatalf("fired count %d, want 0", s.Fired())
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	s := New()
	depth := 0
	var chain func(now Time)
	chain = func(now Time) {
		depth++
		if depth < 100 {
			if _, err := s.After(1, chain); err != nil {
				t.Errorf("chain: %v", err)
			}
		}
	}
	if _, err := s.At(0, chain); err != nil {
		t.Fatal(err)
	}
	end := s.Run()
	if depth != 100 || end != 99 {
		t.Fatalf("depth=%d end=%g, want 100 and 99", depth, end)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		if _, err := s.At(Time(i), func(Time) { count++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.RunUntil(5.5); n != 5 {
		t.Fatalf("RunUntil fired %d, want 5", n)
	}
	if s.Now() != 5.5 {
		t.Fatalf("clock %g, want 5.5", s.Now())
	}
	if s.Pending() != 5 {
		t.Fatalf("pending %d, want 5", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("total fired %d, want 10", count)
	}
}

// TestClockMonotone is a property test: whatever the schedule order, the
// observed clock never decreases.
func TestClockMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New()
		last := -1.0
		ok := true
		for _, r := range raw {
			at := Time(r % 1000)
			if _, err := s.At(at, func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			}); err != nil {
				return false
			}
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
