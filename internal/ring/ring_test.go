package ring

import (
	"errors"
	"testing"
	"time"
)

func mustRing(t *testing.T, self string, members []string) *Ring {
	t.Helper()
	r, err := New(self, members)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New("c", []string{"a", "b"}); !errors.Is(err, ErrNotMember) {
		t.Fatalf("self outside the member list: %v", err)
	}
	if _, err := New("a", []string{"a", "a"}); err == nil {
		t.Fatal("a one-member ring (after dedup) was accepted")
	}
	r := mustRing(t, "a", []string{"b", "a", "b", ""})
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("members %v, want deduped sorted [a b]", got)
	}
	if got := r.Peers(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("peers %v, want [b]", got)
	}
}

// TestOwnershipDeterministic pins the property forwarding correctness
// rests on: every shard, whatever the order its member list was written
// in, computes the same home and the same failover owner for every ID.
func TestOwnershipDeterministic(t *testing.T) {
	members := []string{"h1:1", "h2:2", "h3:3"}
	a := mustRing(t, "h1:1", members)
	b := mustRing(t, "h2:2", []string{"h3:3", "h1:1", "h2:2"})
	dead := "h2:2"
	alive := func(m string) bool { return m != dead }
	for id := uint64(1); id <= 2000; id++ {
		if ha, hb := a.Home(id), b.Home(id); ha != hb {
			t.Fatalf("id %d: homes diverge (%s vs %s)", id, ha, hb)
		}
		oa, ob := a.Owner(id, alive), b.Owner(id, alive)
		if oa != ob {
			t.Fatalf("id %d: failover owners diverge (%s vs %s)", id, oa, ob)
		}
		if oa == dead {
			t.Fatalf("id %d: owner is the dead member", id)
		}
		if home := a.Home(id); home != dead && oa != home {
			t.Fatalf("id %d: home %s alive but owner is %s", id, home, oa)
		}
	}
}

// TestOwnershipSpread demands the consistent hash actually spreads: over a
// large ID range every member of a 3-ring owns a meaningful share.
func TestOwnershipSpread(t *testing.T) {
	members := []string{"h1:1", "h2:2", "h3:3"}
	r := mustRing(t, "h1:1", members)
	counts := make(map[string]int)
	const n = 9000
	for id := uint64(1); id <= n; id++ {
		counts[r.Home(id)]++
	}
	for _, m := range members {
		if counts[m] < n/10 {
			t.Fatalf("member %s owns only %d of %d IDs", m, counts[m], n)
		}
	}
}

func TestMembersLiveness(t *testing.T) {
	r := mustRing(t, "a", []string{"a", "b", "c"})
	m := NewMembers(r, 50*time.Millisecond)

	if !m.Alive("a") {
		t.Fatal("self must always be alive")
	}
	if m.Alive("b") || m.Alive("z") {
		t.Fatal("unpinged and unknown peers must not be alive")
	}

	m.ObservePing("b", 6, true, nil)
	if !m.Alive("b") {
		t.Fatal("peer with a fresh accepted ping must be alive")
	}
	// A transport error keeps the last state; the deadline kills it.
	m.ObservePing("b", 0, false, errors.New("connection refused"))
	if !m.Alive("b") {
		t.Fatal("one failed ping inside the deadline must not kill the peer")
	}
	time.Sleep(60 * time.Millisecond)
	if m.Alive("b") {
		t.Fatal("peer past the deadline must be dead")
	}

	// An incompatible peer gets the typed refusal and is never alive.
	m.ObservePing("c", 4, false, nil)
	if m.Alive("c") {
		t.Fatal("refused peer must not be alive")
	}
	st, ok := m.Status("c")
	if !ok || !errors.Is(st.Err, ErrIncompatiblePeer) {
		t.Fatalf("refused peer's status = %+v, want ErrIncompatiblePeer", st)
	}
	if st.Version != 4 {
		t.Fatalf("refused peer's version = %d, want 4", st.Version)
	}
	// An upgraded peer (handshake now accepted) clears the refusal.
	m.ObservePing("c", 6, true, nil)
	if !m.Alive("c") {
		t.Fatal("upgraded peer must come back alive")
	}
	if st, _ := m.Status("c"); st.Err != nil {
		t.Fatalf("upgraded peer keeps standing error %v", st.Err)
	}

	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Addr != "b" || snap[1].Addr != "c" {
		t.Fatalf("snapshot %+v, want [b c]", snap)
	}
}
