// Package ring is the scheduler's horizontal scale-out layer: shard
// membership and campaign routing for N daemons sharing one campaign
// namespace. The paper's deployment is not one master agent but a DIET
// hierarchy spanning several Grid'5000 sites; this package gives the online
// scheduler the same shape — a static ring of peer daemons, campaign
// ownership by consistent hash of the campaign ID, and a liveness view that
// re-routes a dead shard's campaigns to its ring successor.
//
// The package is transport-free by design: it owns the hash ring and the
// membership state machine, while internal/grid drives the wire traffic
// (ring pings, WAL segment pulls, request forwarding) against it. That
// split keeps ownership arithmetic deterministic and unit-testable — every
// shard with the same member list and the same liveness view computes the
// same owner for every campaign, which is what makes forwarding loop-free.
//
// Two ownership views matter and they are deliberately different:
//
//   - Home(id) hashes over the full configured member list, dead or alive.
//     It is the allocation view: a shard only ever mints campaign IDs it is
//     home for, so two shards can never allocate the same ID however their
//     liveness views diverge.
//   - Owner(id, alive) walks the same ring but skips members the alive
//     predicate rejects. It is the routing and failover view: when a shard
//     dies, its campaigns' ownership moves to the next live member on the
//     ring, the shard that tailed (or will replay) its WAL.
package ring

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"time"
)

// ErrIncompatiblePeer is the typed membership refusal: the peer answered
// the ring handshake below protocol v6 (a version-capped daemon or a
// pre-ring build). Such a daemon keeps serving plain client traffic — it
// just cannot carry forwarded requests or ship WAL segments, so the ring
// refuses it membership rather than degrading around it silently.
var ErrIncompatiblePeer = errors.New("ring: peer speaks a protocol below v6; membership refused")

// ErrNotMember rejects a ring whose self address is missing from the
// member list — a misconfiguration that would make every ownership check
// disagree with the peers'.
var ErrNotMember = errors.New("ring: self address not in member list")

// vnodesPerMember spreads each member over the hash circle so ownership
// splits roughly evenly and a member's death spreads its load over every
// survivor instead of dumping it on one successor.
const vnodesPerMember = 64

// point is one virtual node on the hash circle.
type point struct {
	h      uint64
	member string
}

// Ring is the immutable hash circle over a configured member list.
type Ring struct {
	self    string
	members []string // sorted, deduped
	points  []point  // sorted by hash
}

// New builds the ring for a configured member list. self must be listed;
// duplicates are folded. Every shard of one ring must be started with the
// same member list (order does not matter).
func New(self string, members []string) (*Ring, error) {
	seen := make(map[string]bool, len(members))
	var uniq []string
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	if !seen[self] {
		return nil, fmt.Errorf("%w: %q not in %v", ErrNotMember, self, members)
	}
	if len(uniq) < 2 {
		return nil, fmt.Errorf("ring: a ring needs at least 2 members, got %v", uniq)
	}
	sort.Strings(uniq)
	r := &Ring{self: self, members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodesPerMember)
	for _, m := range uniq {
		for v := 0; v < vnodesPerMember; v++ {
			r.points = append(r.points, point{h: hashString(m + "#" + strconv.Itoa(v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Self returns this shard's advertised address.
func (r *Ring) Self() string { return r.self }

// Members returns the full configured member list, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Peers returns the members other than self, sorted.
func (r *Ring) Peers() []string {
	out := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != r.self {
			out = append(out, m)
		}
	}
	return out
}

// Home returns the campaign's home shard: the owner under the full
// configured member list, dead or alive. Allocation uses this view — a
// shard mints only IDs it is home for — so ID ranges never overlap across
// shards regardless of liveness disagreement.
func (r *Ring) Home(id uint64) string {
	return r.points[r.firstPoint(hashID(id))].member
}

// Owner returns the campaign's owner under the given liveness view: the
// home shard when alive, otherwise the next live member walking the hash
// circle — the shard failover hands the campaign to. alive==nil means
// everyone is alive. When no member is alive the home shard is returned
// (there is nowhere better to point at).
func (r *Ring) Owner(id uint64, alive func(string) bool) string {
	start := r.firstPoint(hashID(id))
	if alive == nil {
		return r.points[start].member
	}
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if alive(p.member) {
			return p.member
		}
	}
	return r.points[start].member
}

// firstPoint locates the first hash point at or clockwise past h.
func (r *Ring) firstPoint(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// hashString places a vnode label on the hash circle: FNV-1a finished
// with mix64. Raw FNV leaves labels sharing a member prefix ("host:port#0"
// … "host:port#63") clustered — the short varying suffix barely disturbs
// the high bits, so each member's vnodes bunch onto one arc and ownership
// splits wildly unevenly; the finalizer avalanches them apart.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// hashID maps a campaign ID onto the hash circle. Campaign IDs are small
// sequential integers — near-zero entropy that a byte-stream hash like
// FNV clusters onto a narrow arc — so they go straight through the
// full-avalanche finalizer.
func hashID(id uint64) uint64 {
	return mix64(id)
}

// mix64 is the splitmix64 finalizer: a bijective full-avalanche mix that
// spreads low-entropy 64-bit inputs uniformly.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// PeerStatus is one peer's membership view, the shard gauges' shape.
type PeerStatus struct {
	Addr string
	// Alive means the peer answered an accepted ring ping within the
	// deadline.
	Alive bool
	// Version is the protocol version the peer last answered with.
	Version int
	// Err is the peer's standing membership error: ErrIncompatiblePeer
	// (wrapped) when the handshake was refused, nil otherwise.
	Err error
	// SincePing is the age of the last successful handshake (0 if never).
	SincePing time.Duration
}

// Members tracks peer liveness from ring-ping outcomes. A peer is alive
// while its last accepted handshake is within deadAfter; an incompatible
// peer (handshake answered below v6) is never alive and carries a typed
// standing error. Self is always alive.
type Members struct {
	self      string
	deadAfter time.Duration

	mu    sync.Mutex
	peers map[string]*peerState
}

type peerState struct {
	lastOK     time.Time
	version    int
	refusedErr error
}

// NewMembers builds the liveness tracker for the ring's peer set.
func NewMembers(r *Ring, deadAfter time.Duration) *Members {
	m := &Members{self: r.Self(), deadAfter: deadAfter, peers: make(map[string]*peerState)}
	for _, p := range r.Peers() {
		m.peers[p] = &peerState{}
	}
	return m
}

// ObservePing folds one handshake outcome into the liveness view. accepted
// and version come from the peer's RingPingResponse; err is the transport
// outcome (non-nil means no usable answer — the peer keeps its state and
// goes dead when the deadline passes). An unaccepted answer records the
// typed incompatibility; a later accepted answer (the peer was upgraded or
// its cap lifted) clears it.
func (m *Members) ObservePing(addr string, version int, accepted bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[addr]
	if p == nil {
		return
	}
	if err != nil {
		return
	}
	p.version = version
	if !accepted {
		p.refusedErr = fmt.Errorf("%w: peer %s answered v%d", ErrIncompatiblePeer, addr, version)
		p.lastOK = time.Time{}
		return
	}
	p.refusedErr = nil
	p.lastOK = time.Now()
}

// Alive reports whether addr is a live ring member right now. Self is
// always alive; unknown addresses never are.
func (m *Members) Alive(addr string) bool {
	if addr == m.self {
		return true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[addr]
	return p != nil && p.refusedErr == nil && !p.lastOK.IsZero() &&
		time.Since(p.lastOK) <= m.deadAfter
}

// AliveFn returns the liveness predicate Ring.Owner consumes.
func (m *Members) AliveFn() func(string) bool { return m.Alive }

// Status snapshots one peer's membership view; ok is false for addresses
// outside the ring.
func (m *Members) Status(addr string) (PeerStatus, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p := m.peers[addr]
	if p == nil {
		return PeerStatus{}, false
	}
	return m.statusLocked(addr, p), true
}

// Snapshot returns every peer's status, sorted by address.
func (m *Members) Snapshot() []PeerStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerStatus, 0, len(m.peers))
	for addr, p := range m.peers {
		out = append(out, m.statusLocked(addr, p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

func (m *Members) statusLocked(addr string, p *peerState) PeerStatus {
	st := PeerStatus{Addr: addr, Version: p.version, Err: p.refusedErr}
	if !p.lastOK.IsZero() {
		st.SincePing = time.Since(p.lastOK)
		st.Alive = p.refusedErr == nil && st.SincePing <= m.deadAfter
	}
	return st
}
