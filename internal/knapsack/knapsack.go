// Package knapsack solves the bounded knapsack problem with an extra
// cardinality constraint, the formulation behind the paper's best heuristic
// (Improvement 3, §4.2):
//
//	maximize   Σᵢ nᵢ·Value[i]
//	subject to Σᵢ nᵢ·Cost[i] ≤ Capacity   and   Σᵢ nᵢ ≤ MaxItems
//
// In the scheduling instance an item i is "a group of i processors"
// (i ∈ [4,11]), its cost is i, its value 1/T[i] — the fraction of a main task
// computed per second by such a group — capacity is the cluster size R and
// MaxItems is NS, because at most NS scenarios run concurrently.
//
// The solver is an exact dynamic program over (capacity, items) with a
// deterministic tie-break (higher value, then fewer items, then lower cost),
// so equal-value plans always resolve the same way. A brute-force reference
// solver is included for property tests and ablations.
//
//oalint:deterministic
package knapsack

import (
	"errors"
	"fmt"
	"math"
)

// Item is one selectable item with unlimited copies available.
type Item struct {
	Name  string
	Cost  int
	Value float64
}

// Problem is a bounded-cardinality knapsack instance.
type Problem struct {
	Items    []Item
	Capacity int
	MaxItems int
}

// Solution reports the chosen multiset.
type Solution struct {
	// Counts[i] is how many copies of Items[i] were selected.
	Counts []int
	Value  float64
	Cost   int
	Items  int
}

// Validate checks the instance is well formed.
func (p *Problem) Validate() error {
	if len(p.Items) == 0 {
		return errors.New("knapsack: no items")
	}
	if p.Capacity < 0 {
		return fmt.Errorf("knapsack: negative capacity %d", p.Capacity)
	}
	if p.MaxItems < 0 {
		return fmt.Errorf("knapsack: negative item bound %d", p.MaxItems)
	}
	for i, it := range p.Items {
		if it.Cost <= 0 {
			return fmt.Errorf("knapsack: item %d (%s) has non-positive cost %d", i, it.Name, it.Cost)
		}
		if it.Value < 0 || math.IsNaN(it.Value) || math.IsInf(it.Value, 0) {
			return fmt.Errorf("knapsack: item %d (%s) has invalid value %g", i, it.Name, it.Value)
		}
	}
	return nil
}

// relEps is the relative tolerance for comparing accumulated float values;
// sums of reciprocals of task durations differ meaningfully well above it.
const relEps = 1e-12

// better reports whether candidate (v1,i1,c1) strictly improves on champion
// (v0,i0,c0) under the deterministic preference order.
func better(v1 float64, i1, c1 int, v0 float64, i0, c0 int) bool {
	scale := math.Max(math.Abs(v0), math.Abs(v1))
	if v1-v0 > relEps*scale {
		return true
	}
	if v0-v1 > relEps*scale {
		return false
	}
	if i1 != i0 {
		return i1 < i0
	}
	return c1 < c0
}

type cell struct {
	value float64
	items int
	cost  int
	// pick is the item index chosen to reach this cell, -1 when the cell is
	// the empty selection.
	pick int
}

// Solve returns an optimal solution of the instance.
//
// Complexity is O(Capacity × MaxItems × len(Items)) time and
// O(Capacity × MaxItems) space; the scheduling instances (R ≤ a few hundred,
// NS ≈ 10, 8 items) solve in microseconds.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	w := p.Capacity + 1
	k := p.MaxItems + 1
	dp := make([]cell, w*k)
	for i := range dp {
		dp[i] = cell{pick: -1}
	}
	at := func(c, n int) *cell { return &dp[c*k+n] }
	for c := 0; c <= p.Capacity; c++ {
		for n := 1; n <= p.MaxItems; n++ {
			// Start from "same capacity, one fewer allowed item".
			*at(c, n) = *at(c, n-1)
			cur := at(c, n)
			for idx, it := range p.Items {
				if it.Cost > c {
					continue
				}
				prev := at(c-it.Cost, n-1)
				v := prev.value + it.Value
				ni := prev.items + 1
				nc := prev.cost + it.Cost
				if better(v, ni, nc, cur.value, cur.items, cur.cost) {
					*cur = cell{value: v, items: ni, cost: nc, pick: idx}
				}
			}
		}
	}
	best := at(p.Capacity, p.MaxItems)
	sol := Solution{
		Counts: make([]int, len(p.Items)),
		Value:  best.value,
		Cost:   best.cost,
		Items:  best.items,
	}
	// Walk the picks back to reconstruct counts. A cell identical to its
	// (c, n-1) parent was inherited by the copy step (picks only overwrite a
	// cell when they strictly improve it), so we descend; otherwise the
	// recorded pick belongs to this level and we follow it.
	c, n := p.Capacity, p.MaxItems
	for n > 0 {
		cl := at(c, n)
		if cl.pick < 0 || *cl == *at(c, n-1) {
			n--
			continue
		}
		sol.Counts[cl.pick]++
		c -= p.Items[cl.pick].Cost
		n--
	}
	return sol, nil
}

// SolveBrute exhaustively enumerates all selections. It is exponential and
// only intended for cross-checking Solve on small instances in tests and for
// the ablation harness.
func SolveBrute(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	best := Solution{Counts: make([]int, len(p.Items))}
	cur := make([]int, len(p.Items))
	var rec func(idx, cost, items int, value float64)
	rec = func(idx, cost, items int, value float64) {
		if better(value, items, cost, best.Value, best.Items, best.Cost) {
			best = Solution{Counts: append([]int(nil), cur...), Value: value, Cost: cost, Items: items}
		}
		if idx == len(p.Items) || items == p.MaxItems {
			return
		}
		// Skip item idx entirely.
		rec(idx+1, cost, items, value)
		// Take 1..max copies of item idx.
		it := p.Items[idx]
		taken := 0
		for cost+it.Cost <= p.Capacity && items+1 <= p.MaxItems {
			cost += it.Cost
			items++
			value += it.Value
			taken++
			cur[idx] = taken
			rec(idx+1, cost, items, value)
		}
		cur[idx] = 0
	}
	rec(0, 0, 0, 0)
	return best, nil
}
