package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveHandChecked(t *testing.T) {
	p := Problem{
		Items: []Item{
			{Name: "a", Cost: 4, Value: 1},
			{Name: "b", Cost: 7, Value: 2},
		},
		Capacity: 15,
		MaxItems: 3,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Best is 2×b (cost 14, value 4); a third item does not fit.
	if sol.Value != 4 || sol.Counts[1] != 2 || sol.Counts[0] != 0 {
		t.Fatalf("solution = %+v, want 2×b", sol)
	}
	if sol.Cost != 14 || sol.Items != 2 {
		t.Fatalf("cost/items = %d/%d, want 14/2", sol.Cost, sol.Items)
	}
}

func TestCardinalityBinds(t *testing.T) {
	p := Problem{
		Items:    []Item{{Name: "a", Cost: 1, Value: 1}},
		Capacity: 100,
		MaxItems: 5,
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Items != 5 || sol.Value != 5 {
		t.Fatalf("cardinality constraint violated: %+v", sol)
	}
}

func TestZeroCapacityAndZeroItems(t *testing.T) {
	p := Problem{Items: []Item{{Cost: 2, Value: 3}}, Capacity: 0, MaxItems: 4}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 || sol.Items != 0 {
		t.Fatalf("zero capacity picked items: %+v", sol)
	}
	p = Problem{Items: []Item{{Cost: 2, Value: 3}}, Capacity: 10, MaxItems: 0}
	sol, err = Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Value != 0 {
		t.Fatalf("zero item bound picked items: %+v", sol)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Problem{
		{},
		{Items: []Item{{Cost: 0, Value: 1}}, Capacity: 5, MaxItems: 1},
		{Items: []Item{{Cost: -1, Value: 1}}, Capacity: 5, MaxItems: 1},
		{Items: []Item{{Cost: 1, Value: -1}}, Capacity: 5, MaxItems: 1},
		{Items: []Item{{Cost: 1, Value: math.NaN()}}, Capacity: 5, MaxItems: 1},
		{Items: []Item{{Cost: 1, Value: 1}}, Capacity: -5, MaxItems: 1},
		{Items: []Item{{Cost: 1, Value: 1}}, Capacity: 5, MaxItems: -1},
	}
	for i, p := range bad {
		if _, err := Solve(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestSolutionCountsConsistent: reported cost/items/value always match the
// reconstructed counts.
func TestSolutionCountsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		nItems := 1 + rng.Intn(6)
		p := Problem{Capacity: rng.Intn(60), MaxItems: rng.Intn(12)}
		for i := 0; i < nItems; i++ {
			p.Items = append(p.Items, Item{
				Cost:  1 + rng.Intn(12),
				Value: rng.Float64() * 10,
			})
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		cost, items, value := 0, 0, 0.0
		for i, c := range sol.Counts {
			cost += c * p.Items[i].Cost
			items += c
			value += float64(c) * p.Items[i].Value
		}
		if cost != sol.Cost || items != sol.Items || math.Abs(value-sol.Value) > 1e-9 {
			t.Fatalf("trial %d: inconsistent solution %+v (recomputed cost=%d items=%d value=%g)",
				trial, sol, cost, items, value)
		}
		if cost > p.Capacity || items > p.MaxItems {
			t.Fatalf("trial %d: infeasible solution %+v for %+v", trial, sol, p)
		}
	}
}

// TestSolveMatchesBruteForce cross-checks the DP against exhaustive search on
// random small instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nItems := 1 + rng.Intn(5)
		p := Problem{Capacity: rng.Intn(30), MaxItems: rng.Intn(8)}
		for i := 0; i < nItems; i++ {
			p.Items = append(p.Items, Item{
				Cost:  1 + rng.Intn(9),
				Value: float64(1+rng.Intn(50)) / 7,
			})
		}
		dp, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := SolveBrute(p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Value-brute.Value) > 1e-9*(1+brute.Value) {
			t.Fatalf("trial %d: DP value %g != brute %g (problem %+v)", trial, dp.Value, brute.Value, p)
		}
	}
}

// TestPaperInstanceShape solves the scheduling-shaped instance (costs 4..11,
// values decreasing with cost) and checks the solution saturates either the
// capacity or the cardinality bound.
func TestPaperInstanceShape(t *testing.T) {
	items := make([]Item, 0, 8)
	for g := 4; g <= 11; g++ {
		items = append(items, Item{Cost: g, Value: 1 / float64(900+2880/(g-3))})
	}
	for _, r := range []int{11, 23, 53, 87, 110} {
		p := Problem{Items: items, Capacity: r, MaxItems: 10}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Items == 0 {
			t.Fatalf("R=%d: empty solution", r)
		}
		// Leftover capacity must be smaller than the cheapest item unless the
		// cardinality bound binds.
		if sol.Items < p.MaxItems && p.Capacity-sol.Cost >= 4 {
			t.Fatalf("R=%d: wasted %d processors with %d groups", r, p.Capacity-sol.Cost, sol.Items)
		}
	}
}

// Property: adding capacity never decreases the optimal value.
func TestValueMonotoneInCapacity(t *testing.T) {
	items := []Item{{Cost: 3, Value: 2}, {Cost: 5, Value: 3.5}, {Cost: 7, Value: 5.5}}
	f := func(capRaw, bumpRaw uint8) bool {
		capacity := int(capRaw) % 64
		bump := int(bumpRaw) % 16
		a, err := Solve(Problem{Items: items, Capacity: capacity, MaxItems: 6})
		if err != nil {
			return false
		}
		b, err := Solve(Problem{Items: items, Capacity: capacity + bump, MaxItems: 6})
		if err != nil {
			return false
		}
		return b.Value >= a.Value-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
