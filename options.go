package oagrid

import (
	"time"

	"oagrid/internal/engine"
	"oagrid/internal/exec"
)

// RunnerOption configures a Runner at construction (Local, Dial). Options
// that have no meaning for a runner flavour are documented as such and
// silently ignored there, so a configuration can be shared between a local
// and a remote runner.
type RunnerOption func(*runnerConfig)

// runnerConfig is the resolved option set of a runner.
type runnerConfig struct {
	backend   Evaluator
	heuristic string
	workers   int
	jitter    float64
	seed      uint64
	trace     bool
	timeout   time.Duration
	stateDir  string
}

func newRunnerConfig(opts []RunnerOption) runnerConfig {
	cfg := runnerConfig{
		backend:   DESBackend,
		heuristic: KnapsackName,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// engineOptions assembles the evaluation options a local runner passes to
// the engine.
func (cfg runnerConfig) engineOptions() engine.Options {
	return engine.Options{Exec: exec.Options{
		Jitter:      cfg.jitter,
		Seed:        cfg.seed,
		RecordTrace: cfg.trace,
	}}
}

// WithBackend selects the evaluator a Local runner uses (ModelBackend,
// DESBackend, or a realrun backend). The default is DESBackend, the
// event-driven ground truth. Remote runners ignore it: the daemon's SeDs
// own their backend.
func WithBackend(ev Evaluator) RunnerOption {
	return func(cfg *runnerConfig) {
		if ev != nil {
			cfg.backend = ev
		}
	}
}

// WithHeuristic sets the runner's default planning heuristic, used by
// campaigns that leave Campaign.Heuristic empty. The default is "knapsack",
// the paper's best performer.
func WithHeuristic(name string) RunnerOption {
	return func(cfg *runnerConfig) {
		if name != "" {
			cfg.heuristic = name
		}
	}
}

// WithWorkers bounds the Local runner's sweep pool (0 or less uses
// GOMAXPROCS). Results are bit-identical whatever the worker count. Remote
// runners ignore it.
func WithWorkers(n int) RunnerOption {
	return func(cfg *runnerConfig) { cfg.workers = n }
}

// WithJitter perturbs every task duration of a Local evaluation by a
// deterministic pseudo-random factor in [1−amp, 1+amp], stream selected by
// seed. Jittered campaigns are reproducible but no longer bit-identical to
// a remote run. Remote runners ignore it.
func WithJitter(amp float64, seed uint64) RunnerOption {
	return func(cfg *runnerConfig) { cfg.jitter, cfg.seed = amp, seed }
}

// WithTrace records per-task spans on Local evaluations; each
// ClusterReport.Result then carries a trace (costs memory on large runs).
// Remote runners ignore it: traces do not travel the wire.
func WithTrace() RunnerOption {
	return func(cfg *runnerConfig) { cfg.trace = true }
}

// WithTimeout bounds one protocol frame of a remote campaign: the dial and
// every streamed frame (verdict, progress, result) must arrive within d.
// Progress frames refresh the deadline, so a streamed campaign may run
// longer than d in total — it fails only when the daemon goes silent for d
// (default 2m). Local runners ignore it: cancel the Run context instead.
func WithTimeout(d time.Duration) RunnerOption {
	return func(cfg *runnerConfig) { cfg.timeout = d }
}

// SubmitOption configures one campaign at submission (Runner.Run) — the
// per-campaign half of the option surface, next to the per-runner
// RunnerOption. Submit options travel with the campaign: a remote runner
// sends them to the daemon on the wire (protocol v3), a durable runner
// journals them with the admission record, and both report them back
// through Runner.Info and Runner.List.
type SubmitOption func(*submitConfig)

// submitConfig is the resolved option set of one submission.
type submitConfig struct {
	priority  int
	labels    map[string]string
	deadline  time.Duration
	heuristic string
}

func newSubmitConfig(opts []SubmitOption) submitConfig {
	var cfg submitConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithPriority orders the campaign in the scheduler's admission queue:
// higher-priority campaigns dispatch first, ties run in admission order.
// The default is 0; negative priorities yield to everything. A Local runner
// records the priority (Info/List report it) but dispatches immediately —
// it has no admission queue to order.
func WithPriority(p int) SubmitOption {
	return func(cfg *submitConfig) { cfg.priority = p }
}

// WithLabels tags the campaign with operator-facing key/value labels,
// matched as a subset by ListFilter.Labels. Later options merge over
// earlier ones.
func WithLabels(labels map[string]string) SubmitOption {
	return func(cfg *submitConfig) {
		if len(labels) == 0 {
			return
		}
		if cfg.labels == nil {
			cfg.labels = make(map[string]string, len(labels))
		}
		for k, v := range labels {
			cfg.labels[k] = v
		}
	}
}

// WithDeadline bounds this one campaign end to end (including requeue
// rounds), overriding the scheduler's default campaign timeout. A campaign
// past its deadline fails with ErrCampaignFailed. Zero keeps the runner's
// default.
func WithDeadline(d time.Duration) SubmitOption {
	return func(cfg *submitConfig) { cfg.deadline = d }
}

// WithCampaignHeuristic overrides the planning heuristic for this one
// campaign — the submit-level equivalent of Campaign.Heuristic, taking
// precedence over it and over the runner's WithHeuristic default.
func WithCampaignHeuristic(name string) SubmitOption {
	return func(cfg *submitConfig) { cfg.heuristic = name }
}

// WithStateDir makes a Local runner durable: every campaign transition is
// journaled to an append-only WAL under dir before it is acknowledged, and
// a new Local runner opened on the same directory replays the journal —
// finished campaigns stay attachable (Runner.Attach) under their original
// IDs with their full event history, and campaigns a crash cut short are
// automatically resumed, re-running only the scenarios without a completed
// chunk. Remote runners ignore it: durability is the daemon's (start it
// with `oarun -daemon -state DIR`). Journal-recovered reports carry no
// backend Result (ClusterReport.Result is nil); makespans and allocations
// round-trip bit-exact.
func WithStateDir(dir string) RunnerOption {
	return func(cfg *runnerConfig) { cfg.stateDir = dir }
}
