package oagrid

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"oagrid/internal/diet"
	"oagrid/internal/grid"
	"oagrid/internal/platform"
	"oagrid/internal/store"
)

// testFleet returns the cluster profiles the grid test fabric serves: the
// first n of the paper's five Grid'5000 profiles at 30 processors.
func testFleet(n int) []*Cluster {
	clusters := platform.FiveClusters()[:n]
	for _, cl := range clusters {
		cl.Procs = 30
	}
	return clusters
}

// startTestFabric boots an in-process daemon plus SeD fleet matching
// testFleet(n).
func startTestFabric(t *testing.T, n int) *grid.Fabric {
	t.Helper()
	f, err := grid.StartFabric(grid.Config{Addr: "127.0.0.1:0"}, n, 30, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.WaitAlive(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestLocalAndDialBitIdentical is the acceptance criterion of the client
// API: the same Campaign through the same Runner interface, once in-process
// and once against a live daemon serving the same cluster profiles, must
// produce bit-identical Results.
func TestLocalAndDialBitIdentical(t *testing.T) {
	ctx := context.Background()
	campaign := NewCampaign(10, 24)

	local, err := Local(testFleet(3))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	fabric := startTestFabric(t, 3)
	remote, err := Dial(ctx, fabric.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	results := make(map[string]*CampaignResult, 2)
	for name, runner := range map[string]Runner{"local": local, "remote": remote} {
		h, err := runner.Run(ctx, campaign)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var planned, chunks int
		var lastProgress EventProgress
		for ev := range h.Events() {
			switch ev := ev.(type) {
			case EventPlanned:
				planned++
				if len(ev.Shares) == 0 {
					t.Errorf("%s: planned event without shares", name)
				}
			case EventChunkDone:
				chunks++
			case EventProgress:
				lastProgress = ev
			}
		}
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if planned == 0 || chunks == 0 {
			t.Errorf("%s: event stream missed stages: %d planned, %d chunks", name, planned, chunks)
		}
		if lastProgress.Done != campaign.Experiment.Scenarios || lastProgress.Total != campaign.Experiment.Scenarios {
			t.Errorf("%s: last progress %d/%d, want %d/%d", name,
				lastProgress.Done, lastProgress.Total, campaign.Experiment.Scenarios, campaign.Experiment.Scenarios)
		}
		results[name] = res
	}

	l, r := results["local"], results["remote"]
	if math.Float64bits(l.Makespan) != math.Float64bits(r.Makespan) {
		t.Fatalf("makespans differ: local %g, remote %g", l.Makespan, r.Makespan)
	}
	if len(l.Reports) != len(r.Reports) {
		t.Fatalf("report counts differ: local %d, remote %d", len(l.Reports), len(r.Reports))
	}
	for i := range l.Reports {
		lr, rr := l.Reports[i], r.Reports[i]
		if lr.Cluster != rr.Cluster || lr.Scenarios != rr.Scenarios {
			t.Fatalf("report %d differs: local %s×%d, remote %s×%d", i, lr.Cluster, lr.Scenarios, rr.Cluster, rr.Scenarios)
		}
		if math.Float64bits(lr.Makespan) != math.Float64bits(rr.Makespan) {
			t.Fatalf("report %d (%s) makespan differs: local %g, remote %g", i, lr.Cluster, lr.Makespan, rr.Makespan)
		}
		if lr.Allocation.String() != rr.Allocation.String() {
			t.Fatalf("report %d (%s) allocation differs: local %v, remote %v", i, lr.Cluster, lr.Allocation, rr.Allocation)
		}
	}

	// The campaign result must also be bit-identical to a serial engine
	// evaluation of each cluster's share.
	v, err := grid.NewVerifier(fabric.Clusters, KnapsackName)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range l.Reports {
		want, err := v.SerialMakespan(rep.Cluster, rep.Scenarios, campaign.Experiment.Months)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(rep.Makespan) != math.Float64bits(want) {
			t.Fatalf("cluster %s: campaign makespan %g, serial evaluation %g", rep.Cluster, rep.Makespan, want)
		}
	}
}

// TestLocalRunnerCancellation: a ctx cancelled mid-campaign stops the sweep
// workers promptly and resolves the handle with ctx's error.
func TestLocalRunnerCancellation(t *testing.T) {
	// A big enough campaign that cancellation lands mid-sweep.
	runner, err := Local(testFleet(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h, err := runner.Run(ctx, NewCampaign(10, 1800))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	start := time.Now()
	res, err := h.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled campaign returned a result: %+v", res)
	}
	if wait := time.Since(start); wait > 10*time.Second {
		t.Fatalf("cancellation took %v", wait)
	}
}

// TestDialRunnerCancellation: cancelling a remote campaign releases the
// client connection and does not wedge a daemon dispatcher — the daemon
// still serves subsequent campaigns.
func TestDialRunnerCancellation(t *testing.T) {
	fabric := startTestFabric(t, 3)
	ctx := context.Background()
	runner, err := Dial(ctx, fabric.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	runCtx, cancel := context.WithCancel(ctx)
	h, err := runner.Run(runCtx, NewCampaign(10, 240))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}

	// The daemon must still be fully operational: the abandoned campaign
	// keeps running (or finishes) server-side, and a fresh one completes.
	h2, err := runner.Run(ctx, NewCampaign(4, 12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.Wait()
	if err != nil {
		t.Fatalf("campaign after cancellation failed: %v", err)
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan after cancellation")
	}
}

// TestCampaignFailedTyped: a daemon with no live SeD fails the campaign at
// its deadline, and the failure surfaces as ErrCampaignFailed.
func TestCampaignFailedTyped(t *testing.T) {
	sched, err := grid.Start(grid.Config{
		Addr:            "127.0.0.1:0",
		CampaignTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })

	runner, err := Dial(context.Background(), sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	h, err := runner.Run(context.Background(), NewCampaign(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); !errors.Is(err, ErrCampaignFailed) {
		t.Fatalf("Wait returned %v, want ErrCampaignFailed", err)
	}
}

// TestInvalidCampaignRejectedUpFront: malformed campaigns and unknown
// heuristics fail at Run, not through the handle.
func TestInvalidCampaignRejectedUpFront(t *testing.T) {
	runner, err := Local(testFleet(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(context.Background(), NewCampaign(0, 12)); err == nil {
		t.Fatal("zero-scenario campaign accepted")
	}
	bad := NewCampaign(2, 12)
	bad.Heuristic = "no-such-heuristic"
	if _, err := runner.Run(context.Background(), bad); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := Local(nil); err == nil {
		t.Fatal("Local without clusters accepted")
	}
}

// TestHandleAbandonedSubscriberDoesNotLeak: a consumer that breaks out of
// the event loop early must not strand the delivery goroutine — the
// buffered subscription lets the pump finish and exit.
func TestHandleAbandonedSubscriberDoesNotLeak(t *testing.T) {
	runner, err := Local(testFleet(3))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		h, err := runner.Run(context.Background(), NewCampaign(6, 12))
		if err != nil {
			t.Fatal(err)
		}
		for range h.Events() {
			break // abandon the subscription after one event
		}
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Pumps drain into their buffers and exit; allow them a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%d goroutines before, %d after 8 abandoned subscriptions", before, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHandleLateSubscriber: Events called after completion still replays
// the full stream, terminated by the EventResult.
func TestHandleLateSubscriber(t *testing.T) {
	runner, err := Local(testFleet(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := runner.Run(context.Background(), NewCampaign(4, 12))
	if err != nil {
		t.Fatal(err)
	}
	want, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Two independent subscribers, both late: each must replay the complete
	// stream including the terminal event.
	for sub := 0; sub < 2; sub++ {
		var sawPlanned bool
		var events int
		var final *CampaignResult
		for ev := range h.Events() {
			events++
			switch ev := ev.(type) {
			case EventPlanned:
				sawPlanned = true
			case EventResult:
				final = ev.Result
			}
		}
		if !sawPlanned {
			t.Fatalf("subscriber %d missed the planned event", sub)
		}
		if events < 3 { // planned + ≥1 chunk/progress + result
			t.Fatalf("subscriber %d saw only %d events", sub, events)
		}
		if final == nil || math.Float64bits(final.Makespan) != math.Float64bits(want.Makespan) {
			t.Fatalf("subscriber %d result %+v does not match Wait %+v", sub, final, want)
		}
	}
}

// TestDialAttachReplaysHistory: Runner.Attach against a daemon returns a
// handle that replays the campaign's full event history — admission,
// planned shares, every chunk — and resolves to a result bit-identical to
// the one the original handle saw.
func TestDialAttachReplaysHistory(t *testing.T) {
	ctx := context.Background()
	fabric := startTestFabric(t, 3)
	runner, err := Dial(ctx, fabric.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	h, err := runner.Run(ctx, NewCampaign(6, 12))
	if err != nil {
		t.Fatal(err)
	}
	want, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	id := h.ID()
	if id == 0 {
		t.Fatal("completed campaign has no ID")
	}

	ah, err := runner.Attach(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var admitted, planned, chunks int
	var final *CampaignResult
	for ev := range ah.Events() {
		switch ev := ev.(type) {
		case EventAdmitted:
			admitted++
			if ev.ID != id {
				t.Fatalf("attached handle admitted as %d, want %d", ev.ID, id)
			}
		case EventPlanned:
			planned++
		case EventChunkDone:
			chunks++
		case EventResult:
			final = ev.Result
		}
	}
	if admitted != 1 || planned == 0 || chunks == 0 || final == nil {
		t.Fatalf("attach replay missed stages: %d admitted, %d planned, %d chunks, result %v",
			admitted, planned, chunks, final != nil)
	}
	got, err := ah.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if ah.ID() != id {
		t.Fatalf("attached handle ID %d, want %d", ah.ID(), id)
	}
	assertSameResult(t, want, got)

	// An unknown ID resolves the handle with the typed error.
	uh, err := runner.Attach(ctx, 424242)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uh.Wait(); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("attach to unknown campaign resolved with %v, want ErrUnknownCampaign", err)
	}
}

// assertSameResult compares two campaign results bit for bit on everything
// that travels wires and journals (the full backend Result does not).
func assertSameResult(t *testing.T, want, got *CampaignResult) {
	t.Helper()
	if math.Float64bits(want.Makespan) != math.Float64bits(got.Makespan) {
		t.Fatalf("makespan %g, want %g", got.Makespan, want.Makespan)
	}
	if got.Requeues != want.Requeues || len(got.Reports) != len(want.Reports) {
		t.Fatalf("result %+v, want %+v", got, want)
	}
	for i := range want.Reports {
		w, g := want.Reports[i], got.Reports[i]
		if w.Cluster != g.Cluster || w.Scenarios != g.Scenarios || w.Round != g.Round ||
			math.Float64bits(w.Makespan) != math.Float64bits(g.Makespan) ||
			w.Allocation.String() != g.Allocation.String() {
			t.Fatalf("report %d = %+v, want %+v", i, g, w)
		}
	}
}

// TestLocalDurableRecoveryAndAttach: a Local runner with a state dir
// journals its campaigns; a new runner on the same dir serves them again —
// same IDs, same event history, bit-identical results.
func TestLocalDurableRecoveryAndAttach(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	r1, err := Local(testFleet(2), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	h, err := r1.Run(ctx, NewCampaign(6, 12))
	if err != nil {
		t.Fatal(err)
	}
	id := h.ID()
	if id == 0 {
		t.Fatal("durable local campaign has no ID")
	}
	want, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := Local(testFleet(2), WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	ah, err := r2.Attach(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ah.Wait()
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, want, got)
	var admitted, planned, chunks int
	for ev := range ah.Events() {
		switch ev.(type) {
		case EventAdmitted:
			admitted++
		case EventPlanned:
			planned++
		case EventChunkDone:
			chunks++
		}
	}
	if admitted != 1 || planned == 0 || chunks == 0 {
		t.Fatalf("recovered handle replay missed stages: %d admitted, %d planned, %d chunks", admitted, planned, chunks)
	}
	// Unknown IDs resolve through the handle, the same shape as Dial.
	uh, err := r2.Attach(ctx, 999)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uh.Wait(); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("attach to unknown local campaign resolved with %v, want ErrUnknownCampaign", err)
	}
}

// TestLocalResumesInterruptedCampaign: a journal with an admitted campaign
// and one completed chunk (the shape a crash mid-campaign leaves) is
// resumed on construction — only the remaining scenarios re-run, and every
// report stays bit-identical to serial evaluation.
func TestLocalResumesInterruptedCampaign(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fleet := testFleet(2)
	clusters := map[string]*Cluster{}
	for _, cl := range fleet {
		clusters[cl.Name] = cl
	}
	v, err := grid.NewVerifier(clusters, KnapsackName)
	if err != nil {
		t.Fatal(err)
	}

	// Forge the half-finished journal: scenarios 0 and 1 completed on the
	// first cluster with the exact serial makespan and plan a real run
	// would have journaled.
	const months = 12
	doneChunk := NewExperiment(2, months)
	alloc, err := Plan(Knapsack, doneChunk, fleet[0])
	if err != nil {
		t.Fatal(err)
	}
	ms, err := v.SerialMakespan(fleet[0].Name, 2, months)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []store.Record{
		{Kind: store.KindAdmitted, ID: 3, Scenarios: 5, Months: months, Heuristic: KnapsackName},
		{Kind: store.KindPlanned, ID: 3, Round: 0, Planned: []diet.PlannedChunk{{Cluster: fleet[0].Name, Scenarios: 2}, {Cluster: fleet[1].Name, Scenarios: 3}}},
		{Kind: store.KindChunk, ID: 3, IDs: []int{0, 1}, Chunk: &diet.ExecResponse{
			Cluster: fleet[0].Name, Makespan: ms, Allocation: alloc, Scenarios: 2, Round: 0, FirstScenario: 0,
		}},
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	r, err := Local(fleet, WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ah, err := r.Attach(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ah.Wait()
	if err != nil {
		t.Fatalf("resumed campaign failed: %v", err)
	}

	// All five scenarios accounted for, the journaled chunk kept verbatim,
	// the resumed work in round 1, and every chunk bit-identical to serial.
	total := 0
	sawRecovered, sawResumed := false, false
	for _, rep := range res.Reports {
		total += rep.Scenarios
		if rep.Round == 0 {
			if rep.Cluster != fleet[0].Name || rep.Scenarios != 2 ||
				math.Float64bits(rep.Makespan) != math.Float64bits(ms) {
				t.Fatalf("recovered chunk mangled: %+v", rep)
			}
			sawRecovered = true
		} else {
			sawResumed = true
		}
		wantMs, err := v.SerialMakespan(rep.Cluster, rep.Scenarios, months)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(rep.Makespan) != math.Float64bits(wantMs) {
			t.Fatalf("resumed chunk %s×%d makespan %g, serial %g", rep.Cluster, rep.Scenarios, rep.Makespan, wantMs)
		}
	}
	if total != 5 || !sawRecovered || !sawResumed {
		t.Fatalf("resumed campaign reports %+v: %d scenarios, recovered %v, resumed %v",
			res.Reports, total, sawRecovered, sawResumed)
	}
	if got := resultMakespan(res.Reports); math.Float64bits(res.Makespan) != math.Float64bits(got) {
		t.Fatalf("resumed makespan %g is not the per-round sum %g", res.Makespan, got)
	}
}

// TestLocalRecoverFullyChunkedCampaign: a crash can land between the last
// chunk record and the terminal record. The recovered campaign has nothing
// remaining — it must finalize as done from the banked reports, not fail on
// a zero-scenario repartition.
func TestLocalRecoverFullyChunkedCampaign(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	fleet := testFleet(1)
	const months = 12
	app := NewExperiment(3, months)
	alloc, err := Plan(Knapsack, app, fleet[0])
	if err != nil {
		t.Fatal(err)
	}
	v, err := grid.NewVerifier(map[string]*Cluster{fleet[0].Name: fleet[0]}, KnapsackName)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := v.SerialMakespan(fleet[0].Name, 3, months)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []store.Record{
		{Kind: store.KindAdmitted, ID: 1, Scenarios: 3, Months: months, Heuristic: KnapsackName},
		{Kind: store.KindPlanned, ID: 1, Round: 0, Planned: []diet.PlannedChunk{{Cluster: fleet[0].Name, Scenarios: 3}}},
		{Kind: store.KindChunk, ID: 1, IDs: []int{0, 1, 2}, Chunk: &diet.ExecResponse{
			Cluster: fleet[0].Name, Makespan: ms, Allocation: alloc, Scenarios: 3, Round: 0, FirstScenario: 0,
		}},
		// ... and no terminal record: the process died right here.
	} {
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	r, err := Local(fleet, WithStateDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ah, err := r.Attach(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ah.Wait()
	if err != nil {
		t.Fatalf("fully-chunked campaign recovered as failure: %v", err)
	}
	if len(res.Reports) != 1 || math.Float64bits(res.Makespan) != math.Float64bits(ms) {
		t.Fatalf("recovered result %+v, want one report with makespan %g", res, ms)
	}
}
