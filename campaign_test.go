package oagrid

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"oagrid/internal/grid"
	"oagrid/internal/platform"
)

// testFleet returns the cluster profiles the grid test fabric serves: the
// first n of the paper's five Grid'5000 profiles at 30 processors.
func testFleet(n int) []*Cluster {
	clusters := platform.FiveClusters()[:n]
	for _, cl := range clusters {
		cl.Procs = 30
	}
	return clusters
}

// startTestFabric boots an in-process daemon plus SeD fleet matching
// testFleet(n).
func startTestFabric(t *testing.T, n int) *grid.Fabric {
	t.Helper()
	f, err := grid.StartFabric(grid.Config{Addr: "127.0.0.1:0"}, n, 30, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.WaitAlive(n, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestLocalAndDialBitIdentical is the acceptance criterion of the client
// API: the same Campaign through the same Runner interface, once in-process
// and once against a live daemon serving the same cluster profiles, must
// produce bit-identical Results.
func TestLocalAndDialBitIdentical(t *testing.T) {
	ctx := context.Background()
	campaign := NewCampaign(10, 24)

	local, err := Local(testFleet(3))
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	fabric := startTestFabric(t, 3)
	remote, err := Dial(ctx, fabric.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()

	results := make(map[string]*CampaignResult, 2)
	for name, runner := range map[string]Runner{"local": local, "remote": remote} {
		h, err := runner.Run(ctx, campaign)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var planned, chunks int
		var lastProgress EventProgress
		for ev := range h.Events() {
			switch ev := ev.(type) {
			case EventPlanned:
				planned++
				if len(ev.Shares) == 0 {
					t.Errorf("%s: planned event without shares", name)
				}
			case EventChunkDone:
				chunks++
			case EventProgress:
				lastProgress = ev
			}
		}
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if planned == 0 || chunks == 0 {
			t.Errorf("%s: event stream missed stages: %d planned, %d chunks", name, planned, chunks)
		}
		if lastProgress.Done != campaign.Experiment.Scenarios || lastProgress.Total != campaign.Experiment.Scenarios {
			t.Errorf("%s: last progress %d/%d, want %d/%d", name,
				lastProgress.Done, lastProgress.Total, campaign.Experiment.Scenarios, campaign.Experiment.Scenarios)
		}
		results[name] = res
	}

	l, r := results["local"], results["remote"]
	if math.Float64bits(l.Makespan) != math.Float64bits(r.Makespan) {
		t.Fatalf("makespans differ: local %g, remote %g", l.Makespan, r.Makespan)
	}
	if len(l.Reports) != len(r.Reports) {
		t.Fatalf("report counts differ: local %d, remote %d", len(l.Reports), len(r.Reports))
	}
	for i := range l.Reports {
		lr, rr := l.Reports[i], r.Reports[i]
		if lr.Cluster != rr.Cluster || lr.Scenarios != rr.Scenarios {
			t.Fatalf("report %d differs: local %s×%d, remote %s×%d", i, lr.Cluster, lr.Scenarios, rr.Cluster, rr.Scenarios)
		}
		if math.Float64bits(lr.Makespan) != math.Float64bits(rr.Makespan) {
			t.Fatalf("report %d (%s) makespan differs: local %g, remote %g", i, lr.Cluster, lr.Makespan, rr.Makespan)
		}
		if lr.Allocation.String() != rr.Allocation.String() {
			t.Fatalf("report %d (%s) allocation differs: local %v, remote %v", i, lr.Cluster, lr.Allocation, rr.Allocation)
		}
	}

	// The campaign result must also be bit-identical to a serial engine
	// evaluation of each cluster's share.
	v, err := grid.NewVerifier(fabric.Clusters, KnapsackName)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range l.Reports {
		want, err := v.SerialMakespan(rep.Cluster, rep.Scenarios, campaign.Experiment.Months)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(rep.Makespan) != math.Float64bits(want) {
			t.Fatalf("cluster %s: campaign makespan %g, serial evaluation %g", rep.Cluster, rep.Makespan, want)
		}
	}
}

// TestLocalRunnerCancellation: a ctx cancelled mid-campaign stops the sweep
// workers promptly and resolves the handle with ctx's error.
func TestLocalRunnerCancellation(t *testing.T) {
	// A big enough campaign that cancellation lands mid-sweep.
	runner, err := Local(testFleet(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h, err := runner.Run(ctx, NewCampaign(10, 1800))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	start := time.Now()
	res, err := h.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled campaign returned a result: %+v", res)
	}
	if wait := time.Since(start); wait > 10*time.Second {
		t.Fatalf("cancellation took %v", wait)
	}
}

// TestDialRunnerCancellation: cancelling a remote campaign releases the
// client connection and does not wedge a daemon dispatcher — the daemon
// still serves subsequent campaigns.
func TestDialRunnerCancellation(t *testing.T) {
	fabric := startTestFabric(t, 3)
	ctx := context.Background()
	runner, err := Dial(ctx, fabric.Sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer runner.Close()

	runCtx, cancel := context.WithCancel(ctx)
	h, err := runner.Run(runCtx, NewCampaign(10, 240))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := h.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}

	// The daemon must still be fully operational: the abandoned campaign
	// keeps running (or finishes) server-side, and a fresh one completes.
	h2, err := runner.Run(ctx, NewCampaign(4, 12))
	if err != nil {
		t.Fatal(err)
	}
	res, err := h2.Wait()
	if err != nil {
		t.Fatalf("campaign after cancellation failed: %v", err)
	}
	if res.Makespan <= 0 {
		t.Fatal("non-positive makespan after cancellation")
	}
}

// TestCampaignFailedTyped: a daemon with no live SeD fails the campaign at
// its deadline, and the failure surfaces as ErrCampaignFailed.
func TestCampaignFailedTyped(t *testing.T) {
	sched, err := grid.Start(grid.Config{
		Addr:            "127.0.0.1:0",
		CampaignTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sched.Close() })

	runner, err := Dial(context.Background(), sched.Addr())
	if err != nil {
		t.Fatal(err)
	}
	h, err := runner.Run(context.Background(), NewCampaign(2, 6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); !errors.Is(err, ErrCampaignFailed) {
		t.Fatalf("Wait returned %v, want ErrCampaignFailed", err)
	}
}

// TestInvalidCampaignRejectedUpFront: malformed campaigns and unknown
// heuristics fail at Run, not through the handle.
func TestInvalidCampaignRejectedUpFront(t *testing.T) {
	runner, err := Local(testFleet(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(context.Background(), NewCampaign(0, 12)); err == nil {
		t.Fatal("zero-scenario campaign accepted")
	}
	bad := NewCampaign(2, 12)
	bad.Heuristic = "no-such-heuristic"
	if _, err := runner.Run(context.Background(), bad); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if _, err := Local(nil); err == nil {
		t.Fatal("Local without clusters accepted")
	}
}

// TestHandleAbandonedSubscriberDoesNotLeak: a consumer that breaks out of
// the event loop early must not strand the delivery goroutine — the
// buffered subscription lets the pump finish and exit.
func TestHandleAbandonedSubscriberDoesNotLeak(t *testing.T) {
	runner, err := Local(testFleet(3))
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		h, err := runner.Run(context.Background(), NewCampaign(6, 12))
		if err != nil {
			t.Fatal(err)
		}
		for range h.Events() {
			break // abandon the subscription after one event
		}
		if _, err := h.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Pumps drain into their buffers and exit; allow them a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%d goroutines before, %d after 8 abandoned subscriptions", before, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHandleLateSubscriber: Events called after completion still replays
// the full stream, terminated by the EventResult.
func TestHandleLateSubscriber(t *testing.T) {
	runner, err := Local(testFleet(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := runner.Run(context.Background(), NewCampaign(4, 12))
	if err != nil {
		t.Fatal(err)
	}
	want, err := h.Wait()
	if err != nil {
		t.Fatal(err)
	}
	// Two independent subscribers, both late: each must replay the complete
	// stream including the terminal event.
	for sub := 0; sub < 2; sub++ {
		var sawPlanned bool
		var events int
		var final *CampaignResult
		for ev := range h.Events() {
			events++
			switch ev := ev.(type) {
			case EventPlanned:
				sawPlanned = true
			case EventResult:
				final = ev.Result
			}
		}
		if !sawPlanned {
			t.Fatalf("subscriber %d missed the planned event", sub)
		}
		if events < 3 { // planned + ≥1 chunk/progress + result
			t.Fatalf("subscriber %d saw only %d events", sub, events)
		}
		if final == nil || math.Float64bits(final.Makespan) != math.Float64bits(want.Makespan) {
			t.Fatalf("subscriber %d result %+v does not match Wait %+v", sub, final, want)
		}
	}
}
