package oagrid

// The benchmark harness: one benchmark per evaluation figure of the paper
// plus the ablations of DESIGN.md and micro-benchmarks of the hot paths.
// Figure benchmarks run a reduced workload (the gains depend on the wave
// structure, not the chain length); cmd/oabench regenerates the full-scale
// data. Custom metrics report the reproduction's headline numbers, e.g.
// max-gain-% for Figure 8.

import (
	"testing"

	"oagrid/internal/climate/field"
	"oagrid/internal/climate/model"
	"oagrid/internal/core"
	"oagrid/internal/exec"
	"oagrid/internal/figures"
	"oagrid/internal/knapsack"
	"oagrid/internal/platform"
)

// benchConfig is the reduced-scale harness configuration shared by the
// figure benchmarks.
func benchConfig() figures.Config {
	return figures.Config{
		App:   core.Application{Scenarios: 10, Months: 60},
		RStep: 5,
	}
}

// BenchmarkFigure1TaskTable re-derives the Figure-1 task-duration table by
// running one short coupled month per processor count (E1).
func BenchmarkFigure1TaskTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := figures.Figure1(figures.Figure1Config{
			WorkDir:   b.TempDir(),
			AtmosGrid: field.Grid{NLat: 24, NLon: 48},
			OceanGrid: field.Grid{NLat: 36, NLon: 72},
			Days:      2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Speedup[platform.MaxGroup], "speedup-at-11procs")
		}
	}
}

// BenchmarkFigure7OptimalGrouping regenerates the optimal-grouping curve
// (E2).
func BenchmarkFigure7OptimalGrouping(b *testing.B) {
	cfg := figures.DefaultConfig()
	for i := 0; i < b.N; i++ {
		s, err := figures.Figure7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := s.Points[len(s.Points)-1]
			b.ReportMetric(last.Mean, "grouping-at-R120")
		}
	}
}

// BenchmarkFigure8Gains regenerates the three gain curves over the five
// cluster profiles (E3).
func BenchmarkFigure8Gains(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		series, err := figures.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxGain := 0.0
			for _, s := range series {
				for _, p := range s.Points {
					if p.Mean > maxGain {
						maxGain = p.Mean
					}
				}
			}
			b.ReportMetric(maxGain, "max-gain-%")
		}
	}
}

// BenchmarkFigure10GridGains regenerates the grid-repartition gains for 2–5
// clusters (E4).
func BenchmarkFigure10GridGains(b *testing.B) {
	cfg := benchConfig()
	sweep := []int{11, 33, 55, 77, 99}
	for i := 0; i < b.N; i++ {
		series, _, err := figures.Figure10(cfg, sweep)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxGain := 0.0
			for _, s := range series {
				for _, p := range s.Points {
					if p.Mean > maxGain {
						maxGain = p.Mean
					}
				}
			}
			b.ReportMetric(maxGain, "max-grid-gain-%")
		}
	}
}

// BenchmarkAblationKnapsackValue compares knapsack value functions (A1).
func BenchmarkAblationKnapsackValue(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationKnapsackValue(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFairness compares dispatch policies (A2).
func BenchmarkAblationFairness(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationFairness(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModelError measures the analytical model's error against
// the executor (A3).
func BenchmarkAblationModelError(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		s, err := figures.AblationModelError(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			worst := 0.0
			for _, p := range s.Points {
				if p.Mean > worst {
					worst = p.Mean
				}
			}
			b.ReportMetric(worst, "worst-model-error-%")
		}
	}
}

// BenchmarkAblationJitter measures gain robustness under duration noise (A4).
func BenchmarkAblationJitter(b *testing.B) {
	cfg := benchConfig()
	cfg.RStep = 20
	for i := 0; i < b.N; i++ {
		if _, err := figures.AblationJitter(cfg, []float64{0.05, 0.15}, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkKnapsackSolve measures one grouping optimization (R=120, NS=10).
func BenchmarkKnapsackSolve(b *testing.B) {
	ref := platform.ReferenceTiming()
	items := make([]knapsack.Item, 0, 8)
	for g := platform.MinGroup; g <= platform.MaxGroup; g++ {
		tg, err := ref.MainSeconds(g)
		if err != nil {
			b.Fatal(err)
		}
		items = append(items, knapsack.Item{Cost: g, Value: 1 / tg})
	}
	p := knapsack.Problem{Items: items, Capacity: 120, MaxItems: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := knapsack.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUniformEstimate measures one closed-form model evaluation.
func BenchmarkUniformEstimate(b *testing.B) {
	app := core.Default()
	ref := platform.ReferenceTiming()
	for i := 0; i < b.N; i++ {
		if _, err := core.UniformEstimate(app, ref, 53, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutorFullScale replays the paper's full workload (10 scenarios
// × 1800 months = 36000 tasks) through the event-driven executor.
func BenchmarkExecutorFullScale(b *testing.B) {
	app := core.Default()
	ref := platform.ReferenceTiming()
	al, err := (core.Knapsack{}).Plan(app, ref, 53)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(app, ref, 53, al, exec.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerformanceVector measures one cluster's step-2 computation.
func BenchmarkPerformanceVector(b *testing.B) {
	app := core.Application{Scenarios: 10, Months: 120}
	ref := platform.ReferenceTiming()
	ev := exec.Evaluator(exec.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.PerformanceVector(app, ref, 53, core.Knapsack{}, ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepartition measures Algorithm 1 on five clusters.
func BenchmarkRepartition(b *testing.B) {
	app := core.Application{Scenarios: 10, Months: 60}
	ev := core.EstimateEvaluator()
	var perf [][]float64
	for _, cl := range platform.FiveClusters() {
		vec, err := core.PerformanceVector(app, cl.Timing, 60, core.Basic{}, ev)
		if err != nil {
			b.Fatal(err)
		}
		perf = append(perf, vec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Repartition(perf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoupledMonth measures one toy coupled month (the pcr task) at the
// default grids with the full 4-to-11 moldable spread reported as the
// speedup between the two extremes.
func BenchmarkCoupledMonth(b *testing.B) {
	for _, procs := range []int{4, 11} {
		procs := procs
		b.Run(byProcs(procs), func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				_, err := model.Run(model.Config{
					WorkDir:    dir,
					Procs:      procs,
					Scenario:   0,
					Month:      0,
					CloudParam: 0.4,
					Days:       5,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byProcs(p int) string { return "procs-" + string(rune('0'+p/10)) + string(rune('0'+p%10)) }
