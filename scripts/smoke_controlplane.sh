#!/usr/bin/env bash
# Control-plane smoke: start a real daemon on ephemeral ports, drive the
# oasched submit/-list/-info/-cancel verbs against it, then scrape the
# /metrics endpoint and assert the per-tenant fairness gauges. CI runs this
# (.github/workflows/ci.yml), and it works identically from a checkout:
#
#   ./scripts/smoke_controlplane.sh
#
# The daemon picks its own ports (-addr/-metrics 127.0.0.1:0) and the script
# parses them from its startup log, so parallel runs never collide.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
  status=$?
  if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
  fi
  if [ "$status" -ne 0 ] && [ -f "$workdir/daemon.log" ]; then
    echo "--- daemon log ---" >&2
    cat "$workdir/daemon.log" >&2
  fi
  rm -rf "$workdir"
  exit "$status"
}
trap cleanup EXIT

# Real binaries, not `go run`: the PID we signal must be the daemon itself.
go build -o "$workdir/oarun" ./cmd/oarun
go build -o "$workdir/oasched" ./cmd/oasched

"$workdir/oarun" -daemon -addr 127.0.0.1:0 -metrics 127.0.0.1:0 -seds 2 \
  -tenant-weights ocean=2,atmos=1 >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^scheduler daemon listening on \([^ ]*\).*/\1/p' "$workdir/daemon.log" | head -n1)"
  [ -n "$addr" ] && break
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: daemon exited before announcing its address" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "smoke: daemon never announced its address" >&2
  exit 1
fi
metrics_addr="$(sed -n 's|^metrics endpoint on http://\([^/]*\)/metrics.*|\1|p' "$workdir/daemon.log" | head -n1)"
if [ -z "$metrics_addr" ]; then
  echo "smoke: daemon never announced its metrics endpoint" >&2
  exit 1
fi
echo "smoke: daemon on $addr, metrics on $metrics_addr"

for _ in $(seq 1 50); do
  "$workdir/oasched" -addr "$addr" -list >/dev/null 2>&1 && break
  sleep 0.2
done

# Submit with per-campaign options, then the -list / -info / -cancel verbs.
# Verb output lands in files first: under pipefail, `| grep -q` would turn
# grep's early exit into a SIGPIPE failure of the verb itself.
"$workdir/oasched" -addr "$addr" -ns 4 -nm 12 -priority 5 -labels team=ocean,tier=gold
"$workdir/oasched" -addr "$addr" -list
"$workdir/oasched" -addr "$addr" -list -status done -labels team=ocean >"$workdir/list.txt"
grep -q "^1\b" "$workdir/list.txt"
"$workdir/oasched" -addr "$addr" -info 1 >"$workdir/info.txt"
grep -q done "$workdir/info.txt"
"$workdir/oasched" -addr "$addr" -cancel 1 >"$workdir/cancel.txt"
grep -q "campaign 1: done" "$workdir/cancel.txt"

# /metrics: Prometheus text with the queue, per-tenant and SeD families.
# The completed counter settles just after the campaign's result frame, so
# the first assertion retries briefly.
metrics_out="$workdir/metrics.txt"
ok=""
for _ in $(seq 1 50); do
  curl -fsS "http://$metrics_addr/metrics" >"$metrics_out"
  if grep -q 'oagrid_tenant_completed_total{tenant="ocean"} 1' "$metrics_out"; then
    ok=1
    break
  fi
  sleep 0.1
done
if [ -z "$ok" ]; then
  echo "smoke: /metrics never reported the ocean tenant's completion" >&2
  cat "$metrics_out" >&2
  exit 1
fi
grep -q '^oagrid_queue_depth ' "$metrics_out"
grep -q 'oagrid_tenant_weight{tenant="ocean"} 2' "$metrics_out"
grep -q 'oagrid_tenant_admitted_total{tenant="ocean"} 1' "$metrics_out"
grep -q 'oagrid_tenant_queue_wait_seconds_count{tenant="ocean"} 1' "$metrics_out"
grep -q '^oagrid_sed_alive' "$metrics_out"
grep -q '^oagrid_wire_tx_bytes_total ' "$metrics_out"
curl -fsSI "http://$metrics_addr/metrics" >"$workdir/headers.txt"
grep -qi '^content-type: text/plain' "$workdir/headers.txt"

echo "control-plane smoke: ok"
