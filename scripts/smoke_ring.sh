#!/usr/bin/env bash
# Sharded-ring smoke: start a 3-daemon ring on concrete loopback ports (the
# member list must be known up front), drive it with oaload -ring, kill one
# daemon mid-run, and assert the run still completes with every chunk report
# bit-identical to serial evaluation — plus the ring gauges on the survivors'
# /metrics: the dead peer marked down and at least one campaign adopted from
# its WAL replica. CI runs this (.github/workflows/ci.yml), and it works
# identically from a checkout:
#
#   ./scripts/smoke_ring.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
pids=()
cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  if [ "$status" -ne 0 ]; then
    for i in 0 1 2; do
      if [ -f "$workdir/daemon$i.log" ]; then
        echo "--- daemon $i log ---" >&2
        cat "$workdir/daemon$i.log" >&2
      fi
    done
    [ -f "$workdir/oaload.log" ] && { echo "--- oaload log ---" >&2; cat "$workdir/oaload.log" >&2; }
  fi
  rm -rf "$workdir"
  exit "$status"
}
trap cleanup EXIT

go build -o "$workdir/oarun" ./cmd/oarun
go build -o "$workdir/oaload" ./cmd/oaload

# Ring membership needs concrete addresses before any daemon starts, so the
# ports are reserved (bound, read back, released) rather than ephemeral.
read -r p0 p1 p2 <<<"$(python3 -c '
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks:
    s.close()
')"
members="127.0.0.1:$p0,127.0.0.1:$p1,127.0.0.1:$p2"
ports=("$p0" "$p1" "$p2")
echo "smoke: ring members $members"

for i in 0 1 2; do
  "$workdir/oarun" -daemon -addr "127.0.0.1:${ports[$i]}" -metrics 127.0.0.1:0 \
    -seds 2 -cprocs 30 -state "$workdir/state$i" \
    -ring "$members" -ring-hb 100ms >"$workdir/daemon$i.log" 2>&1 &
  pids+=("$!")
done

for i in 0 1 2; do
  ok=""
  for _ in $(seq 1 100); do
    if grep -q "^ring member " "$workdir/daemon$i.log" 2>/dev/null; then
      ok=1
      break
    fi
    if ! kill -0 "${pids[$i]}" 2>/dev/null; then
      echo "smoke: daemon $i exited before joining the ring" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [ -z "$ok" ]; then
    echo "smoke: daemon $i never joined the ring" >&2
    exit 1
  fi
done

# Drive the ring, and kill daemon 2 mid-run: its streams break, its admitted
# campaigns are re-attached by the injector's multi-addr clients and adopted
# by the failover owners — the run must still complete and verify.
"$workdir/oaload" -ring "$members" -campaigns 30 -rate 10 -ns 4 -months 12 \
  -seds 2 -cprocs 30 -out "$workdir/BENCH_ring.json" >"$workdir/oaload.log" 2>&1 &
load_pid=$!
sleep 1.5
victim_pid="${pids[2]}"
victim_addr="127.0.0.1:${ports[2]}"
echo "smoke: killing ring member $victim_addr mid-run"
kill -9 "$victim_pid" 2>/dev/null || true
wait "$victim_pid" 2>/dev/null || true
pids[2]=""

if ! wait "$load_pid"; then
  echo "smoke: oaload failed against the degraded ring" >&2
  exit 1
fi
grep -q "verification: every chunk report bit-identical to serial evaluation" "$workdir/oaload.log"
python3 -c '
import json, sys
rep = json.load(open(sys.argv[1]))
assert rep["verified_bit_identical"] is True, "ring run not verified"
assert rep["completed"] + rep.get("cancels", 0) >= rep["campaigns"], rep
assert len(rep["ring"]) == 3, rep["ring"]
assert rep.get("shards"), "no per-shard accounting"
' "$workdir/BENCH_ring.json"

# Survivors' /metrics: ring size 3, the victim marked dead, and its journaled
# campaigns adopted at least once across the survivors. Adoption runs on the
# membership tick after the death deadline, so the scrape retries briefly.
metrics_addrs=()
for i in 0 1; do
  ma="$(sed -n 's|^metrics endpoint on http://\([^/]*\)/metrics.*|\1|p' "$workdir/daemon$i.log" | head -n1)"
  if [ -z "$ma" ]; then
    echo "smoke: daemon $i never announced its metrics endpoint" >&2
    exit 1
  fi
  metrics_addrs+=("$ma")
done
ok=""
for _ in $(seq 1 100); do
  adopted=0
  dead_seen=""
  for ma in "${metrics_addrs[@]}"; do
    curl -fsS "http://$ma/metrics" >"$workdir/metrics.txt" || continue
    grep -q '^oagrid_ring_size 3$' "$workdir/metrics.txt"
    if grep -q "oagrid_ring_peer_alive{peer=\"$victim_addr\"} 0" "$workdir/metrics.txt"; then
      dead_seen=1
    fi
    a="$(sed -n 's/^oagrid_ring_adopted_total \([0-9]*\)$/\1/p' "$workdir/metrics.txt")"
    adopted=$((adopted + ${a:-0}))
  done
  if [ -n "$dead_seen" ] && [ "$adopted" -ge 1 ]; then
    ok=1
    break
  fi
  sleep 0.1
done
if [ -z "$ok" ]; then
  echo "smoke: survivors never reported the dead peer and an adoption (adopted=$adopted)" >&2
  curl -fsS "http://${metrics_addrs[0]}/metrics" >&2 || true
  exit 1
fi

echo "ring smoke: ok (adopted=$adopted)"
