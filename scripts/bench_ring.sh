#!/usr/bin/env bash
# Sharded-ring bench: start a clean 3-daemon ring and drive it with
# `oaload -ring` to produce BENCH_ring.json — the artifact the CI
# bench-regression gate floors (oabench -gate -ring-json). Unlike
# smoke_ring.sh no daemon is killed: this measures the ring's steady-state
# aggregate throughput, including cross-shard routing and WAL replication
# overhead. Usage:
#
#   ./scripts/bench_ring.sh [out.json]     # default BENCH_ring.json
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_ring.json}"
workdir="$(mktemp -d)"
pids=()
cleanup() {
  status=$?
  for pid in "${pids[@]:-}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  if [ "$status" -ne 0 ]; then
    for i in 0 1 2; do
      [ -f "$workdir/daemon$i.log" ] && { echo "--- daemon $i log ---" >&2; cat "$workdir/daemon$i.log" >&2; }
    done
  fi
  rm -rf "$workdir"
  exit "$status"
}
trap cleanup EXIT

go build -o "$workdir/oarun" ./cmd/oarun
go build -o "$workdir/oaload" ./cmd/oaload

read -r p0 p1 p2 <<<"$(python3 -c '
import socket
socks = [socket.socket() for _ in range(3)]
for s in socks:
    s.bind(("127.0.0.1", 0))
print(" ".join(str(s.getsockname()[1]) for s in socks))
for s in socks:
    s.close()
')"
members="127.0.0.1:$p0,127.0.0.1:$p1,127.0.0.1:$p2"
ports=("$p0" "$p1" "$p2")
echo "bench: ring members $members"

for i in 0 1 2; do
  "$workdir/oarun" -daemon -addr "127.0.0.1:${ports[$i]}" -seds 2 -cprocs 30 \
    -queue 512 -state "$workdir/state$i" \
    -ring "$members" -ring-hb 100ms >"$workdir/daemon$i.log" 2>&1 &
  pids+=("$!")
done
for i in 0 1 2; do
  for _ in $(seq 1 100); do
    grep -q "^ring member " "$workdir/daemon$i.log" 2>/dev/null && break
    if ! kill -0 "${pids[$i]}" 2>/dev/null; then
      echo "bench: daemon $i exited before joining the ring" >&2
      exit 1
    fi
    sleep 0.1
  done
done

"$workdir/oaload" -ring "$members" -campaigns 120 -arrival burst -burst 40 \
  -seds 2 -cprocs 30 -out "$out"
