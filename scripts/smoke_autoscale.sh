#!/usr/bin/env bash
# Elastic-fleet smoke: start a real oarun daemon with -autoscale 1:5 and one
# base SeD, drive the oaload burst profile against it over the wire, and
# assert via /metrics that the fleet scaled up under the burst, drained back
# to the base fleet afterwards, and never requeued a chunk. Every campaign
# is also verified bit-identical client-side (-verify-external replays each
# chunk through the serial evaluator). CI runs this
# (.github/workflows/ci.yml), and it works identically from a checkout:
#
#   ./scripts/smoke_autoscale.sh
#
# The daemon picks its own ports (-addr/-metrics 127.0.0.1:0) and the script
# parses them from its startup log, so parallel runs never collide.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
daemon_pid=""
sampler_pid=""
cleanup() {
  status=$?
  for pid in "$sampler_pid" "$daemon_pid"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  if [ "$status" -ne 0 ]; then
    for log in daemon.log load.log; do
      if [ -f "$workdir/$log" ]; then
        echo "--- $log ---" >&2
        cat "$workdir/$log" >&2
      fi
    done
  fi
  rm -rf "$workdir"
  exit "$status"
}
trap cleanup EXIT

# Real binaries, not `go run`: the PID we signal must be the daemon itself.
go build -o "$workdir/oarun" ./cmd/oarun
go build -o "$workdir/oaload" ./cmd/oaload

# One base SeD, elastic to 5, every other spawn at half speed. The scarce
# dispatcher/in-flight budget is what makes the burst actually queue; -hb
# 100ms also sets the autoscaler's sampling pace.
"$workdir/oarun" -daemon -addr 127.0.0.1:0 -metrics 127.0.0.1:0 \
  -seds 1 -autoscale 1:5 -sed-speeds 1,0.5 \
  -queue 512 -inflight 1 -dispatchers 4 -hb 100ms \
  >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^scheduler daemon listening on \([^ ]*\).*/\1/p' "$workdir/daemon.log" | head -n1)"
  [ -n "$addr" ] && break
  if ! kill -0 "$daemon_pid" 2>/dev/null; then
    echo "smoke: daemon exited before announcing its address" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "smoke: daemon never announced its address" >&2
  exit 1
fi
metrics_addr="$(sed -n 's|^metrics endpoint on http://\([^/]*\)/metrics.*|\1|p' "$workdir/daemon.log" | head -n1)"
if [ -z "$metrics_addr" ]; then
  echo "smoke: daemon never announced its metrics endpoint" >&2
  exit 1
fi
grep -q '^autoscale: elastic fleet 1\.\.5' "$workdir/daemon.log"
echo "smoke: daemon on $addr, metrics on $metrics_addr"

# Record the peak fleet size /metrics reports while the burst runs: the
# scale-UP witness has to be sampled live, the fleet is back down by the end.
: >"$workdir/fleet_sizes.txt"
(
  while :; do
    curl -fsS "http://$metrics_addr/metrics" 2>/dev/null |
      sed -n 's/^oagrid_autoscale_fleet_size //p' >>"$workdir/fleet_sizes.txt" || true
    sleep 0.05
  done
) &
sampler_pid=$!

# The burst: warm/peak/cool arrivals against the external daemon, every
# campaign replayed serially client-side (-verify-external).
"$workdir/oaload" -addr "$addr" -profile burst \
  -campaigns 400 -rate 30 -peak-mult 12 -ns 30 -months 180 -seds 1 \
  -verify-external -out "$workdir/BENCH_autoscale.json" >"$workdir/load.log" 2>&1
grep -q 'verification: every chunk report bit-identical' "$workdir/load.log"
grep -q '"requeues": 0' "$workdir/BENCH_autoscale.json"

kill "$sampler_pid" 2>/dev/null || true
wait "$sampler_pid" 2>/dev/null || true
sampler_pid=""

peak="$(sort -n "$workdir/fleet_sizes.txt" | tail -n1)"
if [ -z "$peak" ] || [ "$peak" -lt 4 ]; then
  echo "smoke: /metrics never showed the fleet scaling up (peak ${peak:-none}, want >= 4)" >&2
  exit 1
fi
echo "smoke: fleet peaked at $peak SeDs during the burst"

# Scale-down: poll /metrics until the fleet is back to the base SeD with
# nothing draining and at least one completed scale-down on the counter.
metrics_out="$workdir/metrics.txt"
ok=""
for _ in $(seq 1 120); do
  curl -fsS "http://$metrics_addr/metrics" >"$metrics_out"
  if grep -q '^oagrid_autoscale_fleet_size 1$' "$metrics_out" &&
    grep -q '^oagrid_autoscale_draining 0$' "$metrics_out" &&
    ! grep -q '^oagrid_autoscale_scale_downs_total 0$' "$metrics_out"; then
    ok=1
    break
  fi
  sleep 0.5
done
if [ -z "$ok" ]; then
  echo "smoke: fleet never drained back to the base SeD" >&2
  cat "$metrics_out" >&2
  exit 1
fi

# The invariants the scale-down must not have broken, plus the new families.
grep -q '^oagrid_requeues_total 0$' "$metrics_out"
grep -q '^oagrid_autoscale_scale_ups_total ' "$metrics_out"
grep -q '^oagrid_autoscale_scale_up_latency_ms_max ' "$metrics_out"
grep -q 'oagrid_sed_speed{cluster=' "$metrics_out"
grep -q 'oagrid_sed_draining{cluster=' "$metrics_out"

echo "autoscale smoke: ok"
