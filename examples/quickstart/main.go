// Quickstart: schedule the paper's ensemble on one cluster and compare the
// planned (analytical) and simulated makespans.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"oagrid"
)

func main() {
	// The experiment of the paper: 10 climate scenarios, each 150 years
	// (1800 chained monthly simulations).
	app := oagrid.DefaultExperiment()

	// A 53-processor cluster with the paper's Figure-1 reference timings —
	// the worked example of §4.2.
	cluster := oagrid.ReferenceCluster(53)

	// Plan with the basic heuristic: all main tasks get the same number of
	// processors, chosen by the analytical makespan model.
	basic, err := oagrid.Plan(oagrid.Basic, app, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("basic plan:     ", basic) // seven groups of 7, as in the paper

	// The knapsack heuristic (the paper's Improvement 3) mixes group sizes
	// to maximize aggregate throughput.
	knap, err := oagrid.Plan(oagrid.Knapsack, app, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("knapsack plan:  ", knap)

	// Replay both on the event-driven executor.
	basicRes, err := oagrid.Simulate(app, cluster, basic, oagrid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	knapRes, err := oagrid.Simulate(app, cluster, knap, oagrid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("basic makespan:    %.1f days (utilization %.1f%%)\n",
		basicRes.Makespan/86400, 100*basicRes.Utilization)
	fmt.Printf("knapsack makespan: %.1f days (utilization %.1f%%)\n",
		knapRes.Makespan/86400, 100*knapRes.Utilization)
	fmt.Printf("gain: %.2f%%\n", 100*(basicRes.Makespan-knapRes.Makespan)/basicRes.Makespan)
}
