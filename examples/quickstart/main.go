// Quickstart: schedule the paper's ensemble on one cluster and compare the
// planned (analytical) and simulated makespans.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"oagrid"
)

func main() {
	// The experiment of the paper: 10 climate scenarios, each 150 years
	// (1800 chained monthly simulations).
	app := oagrid.DefaultExperiment()

	// A 53-processor cluster with the paper's Figure-1 reference timings —
	// the worked example of §4.2.
	cluster := oagrid.ReferenceCluster(53)

	// Plan with the basic heuristic: all main tasks get the same number of
	// processors, chosen by the analytical makespan model.
	basic, err := oagrid.Plan(oagrid.Basic, app, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("basic plan:     ", basic) // seven groups of 7, as in the paper

	// The knapsack heuristic (the paper's Improvement 3) mixes group sizes
	// to maximize aggregate throughput.
	knap, err := oagrid.Plan(oagrid.Knapsack, app, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("knapsack plan:  ", knap)

	// Replay both on the event-driven executor.
	basicRes, err := oagrid.Simulate(app, cluster, basic, oagrid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	knapRes, err := oagrid.Simulate(app, cluster, knap, oagrid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("basic makespan:    %.1f days (utilization %.1f%%)\n",
		basicRes.Makespan/86400, 100*basicRes.Utilization)
	fmt.Printf("knapsack makespan: %.1f days (utilization %.1f%%)\n",
		knapRes.Makespan/86400, 100*knapRes.Utilization)
	fmt.Printf("gain: %.2f%%\n", 100*(basicRes.Makespan-knapRes.Makespan)/basicRes.Makespan)

	// The same ensemble through the client API v1: a Runner takes a Campaign
	// and hands back a result-bearing handle. With one cluster the campaign
	// reduces to plan-then-simulate, so the makespan is bit-identical to the
	// knapsack simulation above. Swap Local for oagrid.Dial(ctx, addr) to
	// run the identical campaign on a grid daemon instead.
	runner, err := oagrid.Local([]*oagrid.Cluster{cluster})
	if err != nil {
		log.Fatal(err)
	}
	handle, err := runner.Run(context.Background(), oagrid.Campaign{Experiment: app})
	if err != nil {
		log.Fatal(err)
	}
	campRes, err := handle.Wait()
	if err != nil {
		log.Fatal(err)
	}
	same := math.Float64bits(campRes.Makespan) == math.Float64bits(knapRes.Makespan)
	fmt.Printf("campaign makespan: %.1f days (bit-identical to knapsack: %v)\n",
		campRes.Makespan/86400, same)
	if !same {
		log.Fatal("campaign and direct simulation diverged")
	}
}
