// Heuristics: sweep cluster sizes and compare the four scheduling heuristics
// of the paper — a command-line rendition of Figure 8's experiment at a few
// resource counts, printing which heuristic wins where.
//
// Run with: go run ./examples/heuristics
package main

import (
	"fmt"
	"log"

	"oagrid"
)

func main() {
	app := oagrid.NewExperiment(10, 240) // 10 scenarios, 20 years each
	fmt.Printf("%6s  %-28s %12s %12s %12s %12s\n",
		"procs", "basic grouping", "basic", "redistrib", "all-to-main", "knapsack")
	for _, procs := range []int{20, 23, 31, 43, 53, 64, 87, 101, 120} {
		cluster := oagrid.ReferenceCluster(procs)
		basicPlan, err := oagrid.Plan(oagrid.Basic, app, cluster)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := oagrid.Compare(app, cluster, oagrid.Options{})
		if err != nil {
			log.Fatal(err)
		}
		base := ms["basic"]
		gain := func(name string) string {
			return fmt.Sprintf("%+.2f%%", 100*(base-ms[name])/base)
		}
		fmt.Printf("%6d  %-28s %10.0fs %12s %12s %12s\n",
			procs, basicPlan.String()[len("basic: "):],
			base, gain("redistribute"), gain("all-to-main"), gain("knapsack"))
	}
	fmt.Println("\npositive = faster than basic; the knapsack heuristic dominates at low")
	fmt.Println("resource counts and all heuristics converge once every scenario can get")
	fmt.Println("an 11-processor group (paper §4.3).")
}
