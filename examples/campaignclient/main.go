// Campaignclient: the client API v1 end to end — one Campaign, one Runner
// interface, two interchangeable implementations. The campaign first runs
// in-process (oagrid.Local), then against a live grid scheduler daemon
// (oagrid.Dial) serving the same cluster profiles, streaming typed progress
// events both times; the two final results are bit-identical.
//
// Run with: go run ./examples/campaignclient
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"time"

	"oagrid"
	"oagrid/internal/grid"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	campaign := oagrid.NewCampaign(10, 120) // a 10-scenario, 10-year study
	campaign.Heuristic = oagrid.KnapsackName

	// In-process: the engine's sweep pool plays the cluster fleet.
	clusters := oagrid.FiveClusters()[:3]
	for _, cl := range clusters {
		cl.Procs = 33
	}
	local, err := oagrid.Local(clusters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== local runner ==")
	localRes := runOnce(ctx, local, campaign)

	// Remote: the same campaign against a scheduler daemon with an identical
	// SeD fleet (in-process here; point Dial at cmd/oarun -daemon in real
	// deployments).
	fabric, err := grid.StartFabric(grid.Config{Addr: "127.0.0.1:0"}, 3, 33, 100*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer fabric.Close()
	if err := fabric.WaitAlive(3, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	remote, err := oagrid.Dial(ctx, fabric.Sched.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	fmt.Println("\n== remote runner (grid daemon) ==")
	remoteRes := runOnce(ctx, remote, campaign)

	same := math.Float64bits(localRes.Makespan) == math.Float64bits(remoteRes.Makespan)
	fmt.Printf("\nlocal %.6f s, remote %.6f s — bit-identical: %v\n",
		localRes.Makespan, remoteRes.Makespan, same)
	if !same {
		log.Fatal("local and remote campaign results diverged")
	}
}

// runOnce drives one campaign and narrates its event stream.
func runOnce(ctx context.Context, runner oagrid.Runner, c oagrid.Campaign) *oagrid.CampaignResult {
	h, err := runner.Run(ctx, c)
	if err != nil {
		log.Fatal(err)
	}
	for ev := range h.Events() {
		switch ev := ev.(type) {
		case oagrid.EventPlanned:
			fmt.Print("planned: ")
			for _, s := range ev.Shares {
				fmt.Printf("%s×%d ", s.Cluster, s.Scenarios)
			}
			fmt.Println()
		case oagrid.EventChunkDone:
			fmt.Printf("chunk:   %-12s %d scenario(s) in %.1f days\n",
				ev.Report.Cluster, ev.Report.Scenarios, ev.Report.Makespan/86400)
		case oagrid.EventProgress:
			fmt.Printf("progress: %d/%d scenarios done\n", ev.Done, ev.Total)
		}
	}
	res, err := h.Wait()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result:  global makespan %.1f days over %d cluster(s)\n",
		res.Makespan/86400, len(res.Reports))
	return res
}
