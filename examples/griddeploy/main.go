// Griddeploy: the paper's Figure-9 protocol on a live (loopback) deployment
// of the DIET-like middleware — a master agent, three per-cluster server
// daemons, and a client that gathers performance vectors, repartitions the
// scenarios with Algorithm 1, and dispatches the execution requests.
//
// Run with: go run ./examples/griddeploy
package main

import (
	"fmt"
	"log"

	"oagrid/internal/core"
	"oagrid/internal/diet"
	"oagrid/internal/exec"
	"oagrid/internal/platform"
)

func main() {
	ma, err := diet.StartMasterAgent("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ma.Close()

	for _, cl := range platform.FiveClusters()[:3] {
		cl.Procs = 33
		sed, err := diet.StartSeD("127.0.0.1:0", cl, exec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		defer sed.Close()
		if err := sed.RegisterWith(ma.Addr()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SeD %-12s up at %s\n", cl.Name, sed.Addr())
	}

	app := core.Application{Scenarios: 10, Months: 120} // a 10-year study
	client := &diet.Client{MAAddr: ma.Addr()}
	res, err := client.Submit(app, core.NameKnapsack)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nrepartition of %d scenarios:\n", app.Scenarios)
	for i, name := range res.Clusters {
		fmt.Printf("  %-12s %d scenario(s)\n", name, res.Repartition.Counts[i])
	}
	fmt.Println("\nexecution reports:")
	for _, r := range res.Reports {
		fmt.Printf("  %-12s groups %v post=%d → %.1f days\n",
			r.Cluster, r.Allocation.Groups, r.Allocation.PostProcs, r.Makespan/86400)
	}
	fmt.Printf("\nglobal makespan: %.1f days\n", res.Makespan/86400)
}
