// Climatemonth: run the toy coupled climate model end to end — the six-task
// monthly pipeline of the paper's Figure 1 (caif, mp, pcr, cof, emi, cd) —
// for three chained months, then read the compressed diagnostics back.
//
// This exercises the substrate standing in for the real ARPEGE/OPA/TRIP/
// OASIS stack: a parallel toy atmosphere (goroutine ranks with halo
// exchange), a sequential ocean with sea ice, river routing, and the
// lock-step coupler.
//
// Run with: go run ./examples/climatemonth
package main

import (
	"fmt"
	"log"
	"os"

	"oagrid/internal/climate/field"
	"oagrid/internal/climate/pipeline"
	"oagrid/internal/climate/sdf"
)

func main() {
	dir, err := os.MkdirTemp("", "climatemonth-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := pipeline.Config{
		Root:     dir,
		Scenario: 4, // ensemble member 4: its own cloud parametrization
		Procs:    8, // 5 atmosphere ranks + OPA + TRIP + OASIS
		Days:     10,
	}
	fmt.Printf("running 3 chained months of scenario %d on %d processors\n\n", cfg.Scenario, cfg.Procs)
	for month := 0; month < 3; month++ {
		diag, tt, err := pipeline.RunMonth(cfg, month)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("month %d: global T %.2f K, SST %.2f K, ice %.3f, precip %.1f  (pcr %v)\n",
			month, diag.GlobalT, diag.GlobalSST, diag.IceFraction, diag.TotalPrecip, tt.PCR.Round(1e6))
	}

	// The compressed diagnostics of month 2, through the self-describing
	// format the cof task standardized them into.
	records, err := pipeline.DecompressDiags(cfg.Dir(), cfg.Scenario, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmonth 2 diagnostics (from diags-*.sdf.gz):")
	for _, rec := range records {
		for _, region := range field.StandardRegions()[:2] { // global + tropics
			mean, err := rec.Field.RegionMean(region)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s %-8s mean %10.4f %s\n", rec.Field.Name, region.Name, mean, rec.Field.Unit)
		}
	}
	_ = sdf.Magic // the records came through the SDF container
	fmt.Printf("\nscenario directory: %s\n", cfg.Dir())
}
