// Ensemble: distribute a climate ensemble over a heterogeneous grid with the
// paper's Algorithm 1 — the scenario the paper's §5 deploys on Grid'5000.
// Each cluster computes its performance vector, the greedy repartition
// assigns scenarios to clusters, and every cluster's share is simulated.
//
// Run with: go run ./examples/ensemble
package main

import (
	"fmt"
	"log"

	"oagrid"
)

func main() {
	// Five clusters with the speed profiles of the paper's evaluation
	// (fastest runs one coupled month in 1177 s on 11 processors, the
	// slowest in 1622 s), 44 processors each.
	clusters := oagrid.FiveClusters()
	for _, c := range clusters {
		c.Procs = 44
	}
	grid, err := oagrid.NewGrid(clusters...)
	if err != nil {
		log.Fatal(err)
	}

	app := oagrid.DefaultExperiment() // 10 scenarios × 1800 months
	plan, err := oagrid.Distribute(app, grid, oagrid.Knapsack, oagrid.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %-10s %-28s %s\n", "cluster", "scenarios", "allocation", "makespan of share")
	for i, name := range plan.Clusters {
		if plan.Counts[i] == 0 {
			fmt.Printf("%-12s %-10d %-28s %s\n", name, 0, "-", "-")
			continue
		}
		share := plan.Vectors[i][plan.Counts[i]-1]
		fmt.Printf("%-12s %-10d groups=%v post=%d   %.1f days\n",
			name, plan.Counts[i], plan.Allocations[i].Groups, plan.Allocations[i].PostProcs, share/86400)
	}
	fmt.Printf("\nglobal makespan: %.1f days\n", plan.Makespan/86400)

	// The paper's conclusion: "The faster, the more DAGs it has to execute."
	fmt.Println("\nscenarios per cluster, fastest to slowest:", plan.Counts)
}
